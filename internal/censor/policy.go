// Package censor models a national censor with more than one border.
//
// The paper measures ScholarCloud through a single choke point — "the"
// GFW on "the" border link — but the real deployment's users sit behind
// provincially operated infrastructure whose enforcement intensity is
// famously uneven (§2: regulation and technical blocking run
// asynchronously, and different regions escalate at different times).
// This package is the declarative description of that unevenness: a
// serializable Policy names each border, gives it a base posture
// (a gfw.Policy), an optional scripted schedule of posture changes on
// the virtual clock, and an optional adaptive controller that watches
// the border's own flow classifications and escalates region by region:
//
//	filtering -> disruption -> probing -> fingerprint
//
// Level 0 (filtering) is the base posture: DNS poisoning, IP blackholes
// and keyword resets. Level 1 (disruption) adds a reset storm and
// throttling. Level 2 (probing) raises cleartext scrutiny and blackholes
// every server active probing confirms. Level 3 (fingerprint) blocks the
// dominant suspicious traffic class outright — and, under continued
// pressure, the next dominant class, until the carrier ladder runs out
// of fingerprints to shed.
//
// Everything is data: a Policy round-trips through JSON, applies to a
// border's gfw.GFW exclusively through gfw.Apply, and never calls an
// imperative knob. The controllers are deterministic on the virtual
// clock, so a censored multi-border world replays byte-identically.
package censor

import (
	"fmt"
	"time"

	"scholarcloud/internal/gfw"
)

// Level is a border's escalation rung.
type Level int

// Escalation rungs, mildest first.
const (
	// LevelFiltering is the base posture: the border's configured
	// blacklists and nothing more.
	LevelFiltering Level = iota
	// LevelDisruption adds a reset storm and bandwidth throttling.
	LevelDisruption
	// LevelProbing raises cleartext scrutiny and blackholes servers that
	// active probing confirms.
	LevelProbing
	// LevelFingerprint blocks the border's dominant suspicious traffic
	// class by wire fingerprint.
	LevelFingerprint
)

// String names the rung for timelines and reports.
func (l Level) String() string {
	switch l {
	case LevelFiltering:
		return "filtering"
	case LevelDisruption:
		return "disruption"
	case LevelProbing:
		return "probing"
	case LevelFingerprint:
		return "fingerprint"
	default:
		return fmt.Sprintf("level-%d", int(l))
	}
}

// DefaultSuspicious are the traffic classes an adaptive border treats as
// circumvention evidence: high-entropy streams, unrecognized cleartext
// (the blinded carrier's other landing spot), and the native VPN
// protocols. TLS and HTTP are deliberately absent — blocking them
// punishes the whole population, which is the regional-inconsistency
// story the paper tells.
func DefaultSuspicious() []gfw.Class {
	return []gfw.Class{
		gfw.ClassEncrypted, gfw.ClassLowEntropy,
		gfw.ClassOpenVPN, gfw.ClassPPTP, gfw.ClassL2TP,
	}
}

// Stage is one step of a scripted schedule: After the given virtual-time
// offset from arming, the border's posture becomes Posture (applied via
// gfw.Apply, so IP blackholes accumulate and everything else replaces).
type Stage struct {
	After   time.Duration `json:"after"`
	Posture gfw.Policy    `json:"posture"`
}

// Adaptive parameterizes a border's escalation controller. The zero
// value means "defaults" for every field; see WithDefaults.
type Adaptive struct {
	// Interval is the control-loop tick spacing (default 15s).
	Interval time.Duration `json:"interval,omitempty"`
	// Trigger is the cumulative suspicious-flow count that first counts
	// as pressure at the filtering level (default 2). Carriers pool and
	// multiplex sessions, so a whole client cohort leaves only a couple
	// of long-lived suspicious flows and per-tick deltas of zero at
	// steady state — the first escalation must fire on the absolute
	// count, and the threshold must sit at the pooled-session scale.
	Trigger int64 `json:"trigger,omitempty"`
	// SuspiciousPerTick is the per-tick fresh suspicious-flow delta that
	// counts as pressure above the filtering level (default 1). The
	// censor's own disruption kills carrier sessions; the redials are the
	// evidence that keeps the escalation going.
	SuspiciousPerTick int64 `json:"suspicious_per_tick,omitempty"`
	// EscalateAfter is how many consecutive pressure ticks precede each
	// escalation (default 2).
	EscalateAfter int `json:"escalate_after,omitempty"`
	// RelaxAfter is how many consecutive quiet ticks precede each
	// de-escalation (default 4).
	RelaxAfter int `json:"relax_after,omitempty"`
	// Storm and Throttle are the disruption-level episode intensities
	// (defaults 0.02 and 0.05).
	Storm    float64 `json:"storm,omitempty"`
	Throttle float64 `json:"throttle,omitempty"`
	// MaxLevel caps the escalation (default LevelFingerprint).
	MaxLevel Level `json:"max_level,omitempty"`
	// Suspicious overrides the classes counted as circumvention evidence
	// (default DefaultSuspicious). Order breaks dominance ties.
	Suspicious []gfw.Class `json:"suspicious,omitempty"`
}

// WithDefaults fills unset fields.
func (a Adaptive) WithDefaults() Adaptive {
	if a.Interval == 0 {
		a.Interval = 15 * time.Second
	}
	if a.Trigger == 0 {
		a.Trigger = 2
	}
	if a.SuspiciousPerTick == 0 {
		a.SuspiciousPerTick = 1
	}
	if a.EscalateAfter == 0 {
		a.EscalateAfter = 2
	}
	if a.RelaxAfter == 0 {
		a.RelaxAfter = 4
	}
	if a.Storm == 0 {
		a.Storm = 0.02
	}
	if a.Throttle == 0 {
		a.Throttle = 0.05
	}
	if a.MaxLevel == 0 {
		a.MaxLevel = LevelFingerprint
	}
	if len(a.Suspicious) == 0 {
		a.Suspicious = DefaultSuspicious()
	}
	return a
}

// Validate rejects nonsensical controllers (after defaulting).
func (a Adaptive) Validate() error {
	a = a.WithDefaults()
	if a.Interval < 0 {
		return fmt.Errorf("censor: adaptive Interval must be non-negative (got %v)", a.Interval)
	}
	if a.Trigger < 1 || a.SuspiciousPerTick < 1 {
		return fmt.Errorf("censor: adaptive Trigger and SuspiciousPerTick must be >= 1 (got %d and %d)",
			a.Trigger, a.SuspiciousPerTick)
	}
	if a.EscalateAfter < 1 || a.RelaxAfter < 1 {
		return fmt.Errorf("censor: adaptive EscalateAfter and RelaxAfter must be >= 1 (got %d and %d)",
			a.EscalateAfter, a.RelaxAfter)
	}
	if a.Storm < 0 || a.Storm > 1 || a.Throttle < 0 || a.Throttle > 1 {
		return fmt.Errorf("censor: adaptive Storm and Throttle must be probabilities in [0,1] (got %g and %g)",
			a.Storm, a.Throttle)
	}
	if a.MaxLevel < LevelFiltering || a.MaxLevel > LevelFingerprint {
		return fmt.Errorf("censor: adaptive MaxLevel must be between %s and %s (got %d)",
			LevelFiltering, LevelFingerprint, int(a.MaxLevel))
	}
	return nil
}

// BorderPolicy describes one border: its name, its standing posture, an
// optional scripted schedule, and an optional adaptive controller.
type BorderPolicy struct {
	Name string `json:"name"`
	// Base is the posture applied when the policy is armed.
	Base gfw.Policy `json:"base,omitempty"`
	// Stages is the scripted schedule, in onset order.
	Stages []Stage `json:"stages,omitempty"`
	// Adaptive, when non-nil, runs the escalation controller.
	Adaptive *Adaptive `json:"adaptive,omitempty"`
}

// Validate rejects malformed border policies.
func (b BorderPolicy) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("censor: every border needs a name")
	}
	if err := b.Base.Validate(); err != nil {
		return fmt.Errorf("censor: border %q base posture: %w", b.Name, err)
	}
	last := time.Duration(-1)
	for i, st := range b.Stages {
		if st.After < 0 {
			return fmt.Errorf("censor: border %q stage %d fires at negative offset %v", b.Name, i, st.After)
		}
		if st.After < last {
			return fmt.Errorf("censor: border %q stages out of order (stage %d at %v after %v)",
				b.Name, i, st.After, last)
		}
		last = st.After
		if err := st.Posture.Validate(); err != nil {
			return fmt.Errorf("censor: border %q stage %d posture: %w", b.Name, i, err)
		}
	}
	if b.Adaptive != nil {
		if err := b.Adaptive.Validate(); err != nil {
			return fmt.Errorf("censor: border %q: %w", b.Name, err)
		}
	}
	return nil
}

// Policy is a complete multi-border censorship regime. It is pure data:
// serializable, comparable, and applied exclusively through gfw.Apply.
type Policy struct {
	Name    string         `json:"name"`
	Borders []BorderPolicy `json:"borders"`
}

// Validate rejects malformed policies.
func (p Policy) Validate() error {
	if len(p.Borders) == 0 {
		return fmt.Errorf("censor: policy %q has no borders", p.Name)
	}
	seen := make(map[string]bool, len(p.Borders))
	for _, b := range p.Borders {
		if err := b.Validate(); err != nil {
			return err
		}
		if seen[b.Name] {
			return fmt.Errorf("censor: policy %q names border %q twice", p.Name, b.Name)
		}
		seen[b.Name] = true
	}
	return nil
}

// Event is one entry of a border's escalation timeline: a scripted stage
// firing, an adaptive escalation or relaxation, a class fingerprinted or
// a server blackholed, or the client side rotating transports in
// response.
type Event struct {
	// At is the virtual-time offset from arming.
	At     time.Duration `json:"at"`
	Border string        `json:"border"`
	// Kind is "stage", "escalate", "relax", "block-class", "blackhole",
	// or "transport".
	Kind string `json:"kind"`
	// From and To describe the transition (levels for escalate/relax,
	// carrier rungs for transport).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Reason is what tripped it.
	Reason string `json:"reason,omitempty"`
}

// Profiles returns the named censorship regimes the figures and the
// deployment profile flag draw from.
//
//   - "scripted": two borders on fixed schedules — the coastal one runs a
//     brief reset-storm window, the inland one throttles and then
//     fingerprints the suspicious classes. No feedback.
//   - "adaptive": two aggressive adaptive borders; both escalate to
//     fingerprint blocking under carrier traffic. The survival figure.
//   - "regional": one lenient coastal border that never escalates beside
//     one strict adaptive inland border — the paper's regional
//     inconsistency, in one world.
func Profiles() []Policy {
	aggressive := &Adaptive{}
	return []Policy{
		{
			Name: "scripted",
			Borders: []BorderPolicy{
				{
					Name: "coastal",
					Stages: []Stage{
						{After: 30 * time.Second, Posture: gfw.Policy{ResetStorm: 0.02}},
						{After: 90 * time.Second, Posture: gfw.Policy{}},
					},
				},
				{
					Name: "inland",
					Stages: []Stage{
						{After: 20 * time.Second, Posture: gfw.Policy{Throttle: 0.05}},
						{After: 60 * time.Second, Posture: gfw.Policy{
							Throttle:     0.05,
							BlockClasses: DefaultSuspicious(),
						}},
					},
				},
			},
		},
		{
			Name: "adaptive",
			Borders: []BorderPolicy{
				{Name: "north", Adaptive: aggressive},
				{Name: "south", Adaptive: aggressive},
			},
		},
		{
			Name: "regional",
			Borders: []BorderPolicy{
				{Name: "coastal"},
				{Name: "inland", Adaptive: aggressive},
			},
		},
	}
}

// ProfileByName resolves one named regime.
func ProfileByName(name string) (Policy, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Policy{}, false
}

// ProfileNames lists the regimes in declaration order.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
