package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/vclock"
)

// Transport tuning constants. Values follow conventional TCP defaults
// scaled for the simulated paths (RTTs of 2–400 ms).
const (
	defaultWindow = 64 * 1024  // bytes in flight per connection
	maxSendBuffer = 256 * 1024 // unsent bytes buffered before Write blocks
	initialRTO    = 1 * time.Second
	minRTO        = 200 * time.Millisecond
	maxRTO        = 5 * time.Second
	synRetries    = 4
)

// Sentinel errors returned by Conn operations.
var (
	// ErrReset indicates the connection was torn down by a RST segment —
	// either from the peer or forged by a censoring middlebox.
	ErrReset = errors.New("netsim: connection reset by peer")
	// ErrRefused indicates the remote port had no listener.
	ErrRefused = errors.New("netsim: connection refused")
	// ErrDialTimeout indicates the handshake never completed (e.g. a
	// blackholed destination).
	ErrDialTimeout = errors.New("netsim: connection timed out")
)

type timeoutError struct{}

func (timeoutError) Error() string   { return "netsim: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ErrTimeout is returned when a deadline expires. It satisfies net.Error
// with Timeout() == true.
var ErrTimeout net.Error = timeoutError{}

type connState int

const (
	stateSynSent connState = iota
	stateSynRcvd
	stateEstablished
	stateClosed
)

type segment struct {
	seq     uint32
	payload []byte
	fin     bool
	sentAt  time.Duration
	rexmit  bool
}

func (s *segment) end() uint32 {
	e := s.seq + uint32(len(s.payload))
	if s.fin {
		e++
	}
	return e
}

type oooSegment struct {
	payload []byte
	fin     bool
}

// Conn is a reliable byte-stream connection over the simulated network.
// It implements net.Conn.
//
// Simplifications relative to real TCP, chosen because the study's
// workloads never exercise them: the congestion/flow window is a fixed 64
// KB (no slow start), and the receiver does not advertise a window — an
// application that never reads buffers inbound data without bounding the
// sender. Loss recovery (RTO with backoff, fast retransmit on three
// duplicate ACKs) and RFC 1122 delayed ACKs are implemented, since
// loss-induced stalls are precisely what the paper's PLT/PLR figures
// measure.
type Conn struct {
	host   *Host
	local  AddrPort
	remote AddrPort

	mu       sync.Mutex
	cond     *vclock.Cond // broadcast on any state change
	state    connState
	err      error
	closed   bool // user called Close
	teardown bool // removed from the host's connection table

	// Receive side.
	rcvBuf  []byte
	rcvNxt  uint32
	ooo     map[uint32]oooSegment
	peerFin bool

	// Delayed-ACK state (RFC 1122: ACK at least every second full
	// segment or within the delayed-ACK timeout).
	ackPending bool
	ackTimer   *vclock.Timer

	// Send side.
	sndBuf    []byte
	sndUna    uint32
	sndNxt    uint32
	inflight  []*segment
	dupAcks   int
	finQueued bool
	finSent   bool
	finAcked  bool

	// RTT estimation and retransmission.
	srtt, rttvar time.Duration
	rto          time.Duration
	rtoTimer     *vclock.Timer
	synTimer     *vclock.Timer
	synAttempts  int
	retransmits  int64

	window int

	readDeadline  time.Time
	writeDeadline time.Time
	rdTimer       *vclock.Timer
	wrTimer       *vclock.Timer

	listener *Listener // server side, until accepted
}

func newConn(h *Host, local, remote AddrPort, state connState) *Conn {
	c := &Conn{
		host:   h,
		local:  local,
		remote: remote,
		state:  state,
		ooo:    make(map[uint32]oooSegment),
		rto:    initialRTO,
		window: defaultWindow,
		sndUna: 1, // ISN 0; SYN consumes sequence 0
		sndNxt: 1,
	}
	c.cond = vclock.NewCond(h.n.sched, &c.mu)
	return c
}

// DialTCP opens a TCP connection to address ("ip:port") and blocks until
// the handshake completes or fails. It must be called from a managed
// goroutine.
func (h *Host) DialTCP(address string) (*Conn, error) {
	ip, port, err := splitHostPort(address)
	if err != nil {
		return nil, err
	}
	remote := AddrPort{ip, port}

	h.mu.Lock()
	lport := h.allocPort()
	local := AddrPort{h.ip, lport}
	c := newConn(h, local, remote, stateSynSent)
	h.tcpConns[tcpKey{lport, remote.IP, remote.Port}] = c
	h.mu.Unlock()

	c.mu.Lock()
	c.sendSYNLocked()
	for c.state == stateSynSent && c.err == nil {
		c.cond.Wait()
	}
	err = c.err
	c.mu.Unlock()
	if err != nil {
		c.deregister()
		return nil, err
	}
	return c, nil
}

func (c *Conn) sendSYNLocked() {
	c.synAttempts++
	c.host.sendRaw(c.host.n.NewPacket(Packet{
		Proto: ProtoTCP,
		Src:   c.local, Dst: c.remote,
		SYN:  true,
		Seq:  0,
		Wire: tcpHeaderSize,
	}))
	attempt := c.synAttempts
	backoff := initialRTO << (attempt - 1)
	c.synTimer = c.host.n.sched.Event(backoff, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.state != stateSynSent || c.err != nil {
			return
		}
		if c.synAttempts >= synRetries {
			c.failLocked(ErrDialTimeout)
			return
		}
		c.sendSYNLocked()
	})
}

func (c *Conn) sendSYNACKLocked() {
	c.synAttempts++
	c.host.sendRaw(c.host.n.NewPacket(Packet{
		Proto: ProtoTCP,
		Src:   c.local, Dst: c.remote,
		SYN: true, ACK: true,
		Seq:    0,
		AckNum: c.rcvNxt,
		Wire:   tcpHeaderSize,
	}))
	attempt := c.synAttempts
	backoff := initialRTO << (attempt - 1)
	c.synTimer = c.host.n.sched.Event(backoff, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.state != stateSynRcvd || c.err != nil {
			return
		}
		if c.synAttempts >= synRetries {
			c.failLocked(ErrDialTimeout)
			return
		}
		c.sendSYNACKLocked()
	})
}

// handlePacket processes an arriving segment. It runs on the simulator's
// driver goroutine.
func (c *Conn) handlePacket(pkt *Packet) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateClosed {
		return
	}
	if pkt.RST {
		if c.state == stateSynSent {
			c.failLocked(ErrRefused)
		} else {
			c.failLocked(ErrReset)
		}
		return
	}

	switch c.state {
	case stateSynSent:
		if pkt.SYN && pkt.ACK {
			c.rcvNxt = pkt.Seq + 1
			c.stopSynTimerLocked()
			c.state = stateEstablished
			c.sendAckLocked()
			c.cond.Broadcast()
		}
		return
	case stateSynRcvd:
		if pkt.SYN && !pkt.ACK {
			// Retransmitted SYN: our SYN-ACK was lost; resend happens via
			// the syn timer, but answer promptly too.
			c.host.sendRaw(c.host.n.NewPacket(Packet{
				Proto: ProtoTCP,
				Src:   c.local, Dst: c.remote,
				SYN: true, ACK: true,
				AckNum: c.rcvNxt,
				Wire:   tcpHeaderSize,
			}))
			return
		}
		if pkt.ACK {
			c.stopSynTimerLocked()
			c.state = stateEstablished
			c.cond.Broadcast()
			if ln := c.listener; ln != nil {
				c.listener = nil
				c.mu.Unlock()
				ln.enqueue(c)
				c.mu.Lock()
			}
		}
	case stateEstablished:
		if pkt.SYN && pkt.ACK {
			// Our handshake ACK was lost; the peer resent its SYN-ACK.
			c.sendAckLocked()
			return
		}
	}

	if pkt.ACK && c.state == stateEstablished {
		c.handleAckLocked(pkt)
	}
	if len(pkt.Payload) > 0 || pkt.FIN {
		c.handleDataLocked(pkt)
	}
}

func (c *Conn) stopSynTimerLocked() {
	if c.synTimer != nil {
		c.synTimer.Stop()
		c.synTimer = nil
	}
}

func (c *Conn) handleAckLocked(pkt *Packet) {
	ack := pkt.AckNum
	switch {
	case ack > c.sndUna:
		now := c.host.n.sched.Elapsed()
		for len(c.inflight) > 0 && c.inflight[0].end() <= ack {
			seg := c.inflight[0]
			c.inflight = c.inflight[1:]
			if !seg.rexmit {
				c.updateRTTLocked(now - seg.sentAt)
			}
			if seg.fin {
				c.finAcked = true
			}
		}
		c.sndUna = ack
		c.dupAcks = 0
		c.rearmRTOLocked()
		c.pumpLocked()
		c.cond.Broadcast()
		c.maybeTeardownLocked()
	case ack == c.sndUna && len(c.inflight) > 0 && len(pkt.Payload) == 0 && !pkt.SYN && !pkt.FIN:
		c.dupAcks++
		if c.dupAcks == 3 {
			c.retransmitLocked()
		}
	}
}

// delayedAckTimeout is the standard delayed-ACK ceiling.
const delayedAckTimeout = 40 * time.Millisecond

func (c *Conn) handleDataLocked(pkt *Packet) {
	seq := pkt.Seq
	payload := pkt.Payload
	fin := pkt.FIN

	// Trim any portion we already received.
	if seq < c.rcvNxt {
		overlap := c.rcvNxt - seq
		if uint32(len(payload)) > overlap {
			payload = payload[overlap:]
			seq = c.rcvNxt
		} else if uint32(len(payload)) == overlap && !fin {
			// Pure duplicate; re-ACK below.
			c.sendAckLocked()
			return
		} else if uint32(len(payload)) < overlap || (uint32(len(payload)) == overlap && fin && c.peerFin) {
			c.sendAckLocked()
			return
		} else {
			payload = nil
			seq = c.rcvNxt
		}
	}

	if seq == c.rcvNxt {
		c.acceptDataLocked(payload, fin)
		// Drain any out-of-order segments that are now contiguous.
		for {
			seg, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.acceptDataLocked(seg.payload, seg.fin)
		}
		c.cond.Broadcast()
		// In-order data: delay the ACK so back-to-back segments share
		// one (FIN is acknowledged immediately to unblock teardown).
		if fin {
			c.sendAckLocked()
		} else {
			c.scheduleAckLocked()
		}
		return
	}
	if seq > c.rcvNxt {
		c.ooo[seq] = oooSegment{payload: payload, fin: fin}
	}
	// Out-of-order or duplicate: immediate ACK so the sender's duplicate
	// ACK counter (fast retransmit) works.
	c.sendAckLocked()
}

// scheduleAckLocked implements delayed ACKs: the second in-order segment
// (or the timeout) flushes the pending acknowledgment.
func (c *Conn) scheduleAckLocked() {
	if c.ackPending {
		c.sendAckLocked()
		return
	}
	c.ackPending = true
	c.ackTimer = c.host.n.sched.Event(delayedAckTimeout, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.ackPending && c.state == stateEstablished {
			c.sendAckLocked()
		}
	})
}

func (c *Conn) acceptDataLocked(payload []byte, fin bool) {
	c.rcvBuf = append(c.rcvBuf, payload...)
	c.rcvNxt += uint32(len(payload))
	if fin {
		c.peerFin = true
		c.rcvNxt++
	}
}

func (c *Conn) sendAckLocked() {
	c.ackPending = false
	if c.ackTimer != nil {
		c.ackTimer.Stop()
		c.ackTimer = nil
	}
	c.host.sendRaw(c.host.n.NewPacket(Packet{
		Proto: ProtoTCP,
		Src:   c.local, Dst: c.remote,
		ACK:    true,
		Seq:    c.sndNxt,
		AckNum: c.rcvNxt,
		Wire:   tcpHeaderSize,
	}))
}

func (c *Conn) updateRTTLocked(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < minRTO {
		c.rto = minRTO
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
}

// SRTT returns the connection's smoothed round-trip time estimate.
func (c *Conn) SRTT() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.srtt
}

// Retransmits returns how many segments this side retransmitted.
func (c *Conn) Retransmits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retransmits
}

func (c *Conn) rearmRTOLocked() {
	if c.rtoTimer != nil {
		c.rtoTimer.Stop()
		c.rtoTimer = nil
	}
	if len(c.inflight) == 0 {
		return
	}
	c.rtoTimer = c.host.n.sched.Event(c.rto, c.onRTO)
}

func (c *Conn) onRTO() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == stateClosed || len(c.inflight) == 0 {
		return
	}
	// Go-back-N: a timeout implies the ACK clock stalled, so resend the
	// whole outstanding window rather than probing one segment per RTO
	// (which collapses bulk throughput under the loss rates the GFW
	// inflicts on censored flows).
	now := c.host.n.sched.Elapsed()
	for _, seg := range c.inflight {
		seg.rexmit = true
		seg.sentAt = now
		c.retransmits++
		c.host.n.noteRetransmit(c.local, c.remote)
		c.transmitLocked(seg)
	}
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	c.rearmRTOLocked()
}

func (c *Conn) retransmitLocked() {
	if len(c.inflight) == 0 {
		return
	}
	seg := c.inflight[0]
	seg.rexmit = true
	seg.sentAt = c.host.n.sched.Elapsed()
	c.retransmits++
	c.host.n.noteRetransmit(c.local, c.remote)
	c.transmitLocked(seg)
}

func (c *Conn) transmitLocked(seg *segment) {
	c.host.sendRaw(c.host.n.NewPacket(Packet{
		Proto: ProtoTCP,
		Src:   c.local, Dst: c.remote,
		ACK:     true,
		FIN:     seg.fin,
		Seq:     seg.seq,
		AckNum:  c.rcvNxt,
		Payload: seg.payload,
		Wire:    len(seg.payload) + tcpHeaderSize,
	}))
}

// pumpLocked moves bytes from the send buffer into flight as the window
// allows, and emits the FIN once everything queued before Close has been
// transmitted.
func (c *Conn) pumpLocked() {
	if c.state != stateEstablished {
		return
	}
	for len(c.sndBuf) > 0 {
		inFlight := int(c.sndNxt - c.sndUna)
		if inFlight >= c.window {
			break
		}
		n := MSS
		if n > len(c.sndBuf) {
			n = len(c.sndBuf)
		}
		if n > c.window-inFlight {
			n = c.window - inFlight
		}
		payload := make([]byte, n)
		copy(payload, c.sndBuf)
		c.sndBuf = c.sndBuf[n:]
		seg := &segment{seq: c.sndNxt, payload: payload, sentAt: c.host.n.sched.Elapsed()}
		c.sndNxt += uint32(n)
		c.inflight = append(c.inflight, seg)
		c.transmitLocked(seg)
	}
	if c.finQueued && !c.finSent && len(c.sndBuf) == 0 {
		seg := &segment{seq: c.sndNxt, fin: true, sentAt: c.host.n.sched.Elapsed()}
		c.sndNxt++
		c.finSent = true
		c.inflight = append(c.inflight, seg)
		c.transmitLocked(seg)
	}
	if c.rtoTimer == nil && len(c.inflight) > 0 {
		c.rearmRTOLocked()
	}
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.rcvBuf) > 0 {
			n := copy(b, c.rcvBuf)
			c.rcvBuf = c.rcvBuf[n:]
			if len(c.rcvBuf) == 0 {
				c.rcvBuf = nil
			}
			return n, nil
		}
		if c.err != nil {
			return 0, c.err
		}
		if c.closed {
			return 0, net.ErrClosed
		}
		if c.peerFin {
			return 0, io.EOF
		}
		if c.deadlinePassedLocked(c.readDeadline) {
			return 0, ErrTimeout
		}
		c.cond.Wait()
	}
}

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for len(b) > 0 {
		if c.err != nil {
			return total, c.err
		}
		if c.closed {
			return total, net.ErrClosed
		}
		if c.deadlinePassedLocked(c.writeDeadline) {
			return total, ErrTimeout
		}
		if c.state != stateEstablished {
			c.cond.Wait()
			continue
		}
		space := maxSendBuffer - len(c.sndBuf)
		if space <= 0 {
			c.cond.Wait()
			continue
		}
		n := space
		if n > len(b) {
			n = len(b)
		}
		c.sndBuf = append(c.sndBuf, b[:n]...)
		b = b[n:]
		total += n
		c.pumpLocked()
	}
	return total, nil
}

func (c *Conn) deadlinePassedLocked(t time.Time) bool {
	return !t.IsZero() && !c.host.n.sched.Now().Before(t)
}

// Close implements net.Conn. It flushes buffered data, sends a FIN, and
// releases the connection once both directions are shut down.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.state == stateEstablished && c.err == nil {
		c.finQueued = true
		c.pumpLocked()
	} else if c.err == nil {
		// Never established: abandon quietly.
		c.stateCloseLocked(nil)
	}
	c.cond.Broadcast()
	c.maybeTeardownLocked()
	c.mu.Unlock()
	return nil
}

func (c *Conn) maybeTeardownLocked() {
	if c.teardown {
		return
	}
	if c.closed && c.finSent && c.finAcked && c.peerFin {
		c.stateCloseLocked(nil)
	}
}

// failLocked terminates the connection with err and wakes all waiters.
func (c *Conn) failLocked(err error) {
	if c.err == nil {
		c.err = err
	}
	c.stateCloseLocked(err)
	c.cond.Broadcast()
}

func (c *Conn) stateCloseLocked(err error) {
	c.state = stateClosed
	c.stopSynTimerLocked()
	if c.rtoTimer != nil {
		c.rtoTimer.Stop()
		c.rtoTimer = nil
	}
	if c.ackTimer != nil {
		c.ackTimer.Stop()
		c.ackTimer = nil
	}
	if !c.teardown {
		c.teardown = true
		// Lock order conn.mu -> host.mu is safe: no code path acquires
		// conn.mu while holding host.mu (dispatch and handleSYN release
		// host.mu before touching any connection).
		c.host.mu.Lock()
		delete(c.host.tcpConns, tcpKey{c.local.Port, c.remote.IP, c.remote.Port})
		c.host.mu.Unlock()
	}
	_ = err
}

func (c *Conn) deregister() {
	c.host.mu.Lock()
	delete(c.host.tcpConns, tcpKey{c.local.Port, c.remote.IP, c.remote.Port})
	c.host.mu.Unlock()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return Addr{Net: "tcp", AP: c.local} }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return Addr{Net: "tcp", AP: c.remote} }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	if err := c.SetReadDeadline(t); err != nil {
		return err
	}
	return c.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readDeadline = t
	if c.rdTimer != nil {
		c.rdTimer.Stop()
		c.rdTimer = nil
	}
	if !t.IsZero() {
		d := t.Sub(c.host.n.sched.Now())
		c.rdTimer = c.host.n.sched.Event(d, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
	}
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writeDeadline = t
	if c.wrTimer != nil {
		c.wrTimer.Stop()
		c.wrTimer = nil
	}
	if !t.IsZero() {
		d := t.Sub(c.host.n.sched.Now())
		c.wrTimer = c.host.n.sched.Event(d, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
	}
	return nil
}

// Listener accepts inbound TCP connections on a host port.
type Listener struct {
	host *Host
	port int

	mu     sync.Mutex
	cond   *vclock.Cond
	queue  []*Conn
	closed bool
}

func (ln *Listener) handleSYN(pkt *Packet) {
	h := ln.host
	key := tcpKey{pkt.Dst.Port, pkt.Src.IP, pkt.Src.Port}
	h.mu.Lock()
	if _, exists := h.tcpConns[key]; exists {
		h.mu.Unlock()
		return
	}
	c := newConn(h, AddrPort{h.ip, ln.port}, pkt.Src, stateSynRcvd)
	c.rcvNxt = pkt.Seq + 1
	c.listener = ln
	h.tcpConns[key] = c
	h.mu.Unlock()

	c.mu.Lock()
	c.sendSYNACKLocked()
	c.mu.Unlock()
}

func (ln *Listener) enqueue(c *Conn) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	if ln.closed {
		c.mu.Lock()
		c.failLocked(ErrReset)
		c.mu.Unlock()
		return
	}
	ln.queue = append(ln.queue, c)
	ln.cond.Signal()
}

// Accept implements net.Listener. It must be called from a managed
// goroutine.
func (ln *Listener) Accept() (net.Conn, error) {
	ln.mu.Lock()
	defer ln.mu.Unlock()
	for {
		if len(ln.queue) > 0 {
			c := ln.queue[0]
			ln.queue = ln.queue[1:]
			return c, nil
		}
		if ln.closed {
			return nil, net.ErrClosed
		}
		ln.cond.Wait()
	}
}

// Close implements net.Listener.
func (ln *Listener) Close() error {
	ln.mu.Lock()
	if ln.closed {
		ln.mu.Unlock()
		return nil
	}
	ln.closed = true
	ln.cond.Broadcast()
	ln.mu.Unlock()

	ln.host.mu.Lock()
	delete(ln.host.listeners, ln.port)
	ln.host.mu.Unlock()
	return nil
}

// Addr implements net.Listener.
func (ln *Listener) Addr() net.Addr {
	return Addr{Net: "tcp", AP: AddrPort{ln.host.ip, ln.port}}
}
