package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// testWorld is a two-zone internet with one client and one server host,
// mirroring the Beijing / San Mateo setup of the paper's methodology.
type testWorld struct {
	net    *Network
	cn, us *Zone
	border *LinkHandle
	client *Host
	server *Host
}

func newTestWorld(t *testing.T, seed uint64, borderCfg LinkConfig) *testWorld {
	t.Helper()
	n := New(seed)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	border := n.Connect(cn, us, borderCfg)
	access := LinkConfig{Delay: 2 * time.Millisecond, Bandwidth: 12.5e6} // 100 Mbps
	return &testWorld{
		net:    n,
		cn:     cn,
		us:     us,
		border: border,
		client: n.AddHost("client", "10.0.0.2", cn, access),
		server: n.AddHost("server", "8.8.4.4", us, access),
	}
}

// run executes fn on a managed goroutine and waits for it, failing the
// test if it does not complete.
func run(t *testing.T, n *Network, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	n.Scheduler().Go(func() { done <- fn() })
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation deadlocked (wall-clock timeout)")
	}
}

func startEcho(t *testing.T, h *Host, port int) net.Listener {
	t.Helper()
	ln, err := h.Listen("tcp", ":8080")
	_ = port
	if err != nil {
		t.Fatal(err)
	}
	h.n.sched.Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			h.n.sched.Go(func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					n, err := conn.Read(buf)
					if n > 0 {
						if _, werr := conn.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			})
		}
	})
	return ln
}

func TestDialEchoRoundTrip(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 75 * time.Millisecond})
	startEcho(t, w.server, 8080)

	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		msg := []byte("hello through the border")
		if _, err := conn.Write(msg); err != nil {
			return err
		}
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, msg) {
			t.Errorf("echo = %q, want %q", buf, msg)
		}
		return nil
	})
}

func TestHandshakePlusEchoTiming(t *testing.T) {
	// One-way delay: 2ms access + 75ms border + 2ms access = 79ms,
	// so RTT = 158ms. Handshake (1 RTT) + echo (1 RTT) = 316ms, with no
	// loss and no bandwidth constraints on tiny payloads.
	n := New(1)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, LinkConfig{Delay: 75 * time.Millisecond})
	client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{Delay: 2 * time.Millisecond})
	server := n.AddHost("server", "8.8.4.4", us, LinkConfig{Delay: 2 * time.Millisecond})
	startEcho(t, server, 8080)

	run(t, n, func() error {
		start := n.Scheduler().Elapsed()
		conn, err := client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		dialDone := n.Scheduler().Elapsed() - start
		if want := 158 * time.Millisecond; dialDone != want {
			t.Errorf("handshake took %v, want %v", dialDone, want)
		}
		if _, err := conn.Write([]byte("x")); err != nil {
			return err
		}
		buf := make([]byte, 1)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return err
		}
		total := n.Scheduler().Elapsed() - start
		if want := 316 * time.Millisecond; total != want {
			t.Errorf("handshake+echo took %v, want %v", total, want)
		}
		return nil
	})
}

func TestLargeTransferIntegrity(t *testing.T) {
	w := newTestWorld(t, 7, LinkConfig{Delay: 75 * time.Millisecond, Bandwidth: 12.5e6})
	startEcho(t, w.server, 8080)

	const size = 512 * 1024
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		errs := make(chan error, 1)
		w.net.Scheduler().Go(func() {
			_, err := conn.Write(payload)
			errs <- err
		})
		got := make([]byte, size)
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if err := <-errs; err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("echoed payload corrupted")
		}
		return nil
	})
}

func TestTransferSurvivesLoss(t *testing.T) {
	// 2% loss is far above anything in the paper; the stream must still
	// deliver everything intact via retransmission.
	w := newTestWorld(t, 42, LinkConfig{Delay: 40 * time.Millisecond, BaseLoss: 0.02})
	startEcho(t, w.server, 8080)

	const size = 128 * 1024
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		errs := make(chan error, 1)
		w.net.Scheduler().Go(func() {
			_, err := conn.Write(payload)
			errs <- err
		})
		got := make([]byte, size)
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if err := <-errs; err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("payload corrupted under loss")
		}
		return nil
	})
	stats := w.client.Stats()
	if stats.LossRate() == 0 {
		t.Error("expected nonzero measured loss rate")
	}
}

func TestLossSlowsTransfer(t *testing.T) {
	elapsed := func(loss float64, seed uint64) time.Duration {
		n := New(seed)
		defer n.Stop()
		cn := n.AddZone("cn")
		us := n.AddZone("us")
		n.Connect(cn, us, LinkConfig{Delay: 50 * time.Millisecond, BaseLoss: loss})
		client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{Delay: time.Millisecond})
		server := n.AddHost("server", "8.8.4.4", us, LinkConfig{Delay: time.Millisecond})
		startEcho(t, server, 8080)
		var d time.Duration
		run(t, n, func() error {
			conn, err := client.DialTCP("8.8.4.4:8080")
			if err != nil {
				return err
			}
			defer conn.Close()
			payload := make([]byte, 64*1024)
			start := n.Scheduler().Elapsed()
			errs := make(chan error, 1)
			n.Scheduler().Go(func() {
				_, err := conn.Write(payload)
				errs <- err
			})
			got := make([]byte, len(payload))
			if _, err := io.ReadFull(conn, got); err != nil {
				return err
			}
			if err := <-errs; err != nil {
				return err
			}
			d = n.Scheduler().Elapsed() - start
			return nil
		})
		return d
	}
	clean := elapsed(0, 3)
	lossy := elapsed(0.05, 3)
	if lossy <= clean {
		t.Errorf("5%% loss transfer (%v) not slower than clean transfer (%v)", lossy, clean)
	}
}

func TestBandwidthSerializationDelay(t *testing.T) {
	// 100 KB over a 1 MB/s link adds ~100 ms of serialization beyond the
	// propagation delay.
	n := New(1)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, LinkConfig{Delay: 10 * time.Millisecond, Bandwidth: 1e6, MaxQueue: 5 * time.Second})
	client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{})
	server := n.AddHost("server", "8.8.4.4", us, LinkConfig{})
	startEcho(t, server, 8080)

	run(t, n, func() error {
		conn, err := client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		payload := make([]byte, 100*1024)
		start := n.Scheduler().Elapsed()
		errs := make(chan error, 1)
		n.Scheduler().Go(func() {
			_, err := conn.Write(payload)
			errs <- err
		})
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if err := <-errs; err != nil {
			return err
		}
		d := n.Scheduler().Elapsed() - start
		// Forward and echoed directions use independent link capacity and
		// overlap, but each direction alone needs >= 100ms to serialize
		// 100KB at 1MB/s (vs ~20ms of pure propagation RTT).
		if d < 100*time.Millisecond {
			t.Errorf("transfer of echoed 100KB over 1MB/s took %v, want >= 100ms", d)
		}
		return nil
	})
}

func TestDialClosedPortRefused(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 10 * time.Millisecond})
	run(t, w.net, func() error {
		_, err := w.client.DialTCP("8.8.4.4:9999")
		if !errors.Is(err, ErrRefused) {
			t.Errorf("dial closed port: err = %v, want ErrRefused", err)
		}
		return nil
	})
}

func TestDialBlackholeTimesOut(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 10 * time.Millisecond})
	run(t, w.net, func() error {
		start := w.net.Scheduler().Elapsed()
		_, err := w.client.DialTCP("203.0.113.99:80") // no such host
		if !errors.Is(err, ErrDialTimeout) {
			t.Errorf("dial blackhole: err = %v, want ErrDialTimeout", err)
		}
		if d := w.net.Scheduler().Elapsed() - start; d < 5*time.Second {
			t.Errorf("blackholed dial failed after %v, want a multi-second stall", d)
		}
		return nil
	})
}

type dropAllInspector struct{}

func (dropAllInspector) Inspect(*Packet) Verdict { return VerdictDrop }

func TestInspectorDropBlackholesFlow(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 10 * time.Millisecond})
	w.border.SetInspector(dropAllInspector{})
	startEcho(t, w.server, 8080)
	run(t, w.net, func() error {
		_, err := w.client.DialTCP("8.8.4.4:8080")
		if !errors.Is(err, ErrDialTimeout) {
			t.Errorf("dial through dropping inspector: err = %v, want ErrDialTimeout", err)
		}
		return nil
	})
}

type resetPayloadInspector struct{ needle []byte }

func (i resetPayloadInspector) Inspect(p *Packet) Verdict {
	if bytes.Contains(p.Payload, i.needle) {
		return VerdictReset
	}
	return VerdictPass
}

func TestInspectorResetTearsDownBothEnds(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 10 * time.Millisecond})
	w.border.SetInspector(resetPayloadInspector{needle: []byte("scholar.google.com")})

	ln, err := w.server.Listen("tcp", ":8080")
	if err != nil {
		t.Fatal(err)
	}
	serverErr := make(chan error, 1)
	w.net.Scheduler().Go(func() {
		conn, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		defer conn.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				serverErr <- err
				return
			}
		}
	})

	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		if _, err := conn.Write([]byte("GET http://scholar.google.com/ HTTP/1.1\r\n")); err != nil {
			return err
		}
		// The keyword-bearing segment dies at the border; the client sees
		// a forged RST on its next read.
		buf := make([]byte, 1)
		_, err = conn.Read(buf)
		if !errors.Is(err, ErrReset) {
			t.Errorf("client read after censored write: err = %v, want ErrReset", err)
		}
		return nil
	})
	select {
	case err := <-serverErr:
		if !errors.Is(err, ErrReset) {
			t.Errorf("server side: err = %v, want ErrReset", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server never observed the reset")
	}
}

func TestReadDeadline(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 10 * time.Millisecond})
	startEcho(t, w.server, 8080)
	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		conn.SetReadDeadline(w.net.Clock().Now().Add(500 * time.Millisecond))
		start := w.net.Scheduler().Elapsed()
		buf := make([]byte, 1)
		_, err = conn.Read(buf)
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Errorf("read past deadline: err = %v, want timeout", err)
		}
		if d := w.net.Scheduler().Elapsed() - start; d != 500*time.Millisecond {
			t.Errorf("deadline fired after %v, want 500ms", d)
		}
		return nil
	})
}

func TestCloseDeliversEOF(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 10 * time.Millisecond})
	ln, err := w.server.Listen("tcp", ":8080")
	if err != nil {
		t.Fatal(err)
	}
	w.net.Scheduler().Go(func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("bye"))
		conn.Close()
	})
	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		data, err := io.ReadAll(conn)
		if err != nil {
			return err
		}
		if string(data) != "bye" {
			t.Errorf("data = %q, want %q", data, "bye")
		}
		return nil
	})
}

func TestUDPRoundTrip(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 25 * time.Millisecond})
	pc, err := w.server.ListenPacket(53)
	if err != nil {
		t.Fatal(err)
	}
	w.net.Scheduler().Go(func() {
		buf := make([]byte, 1500)
		for {
			n, addr, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			pc.WriteTo(append([]byte("re:"), buf[:n]...), addr)
		}
	})
	run(t, w.net, func() error {
		conn, err := w.client.DialUDP("8.8.4.4:53")
		if err != nil {
			return err
		}
		defer conn.Close()
		start := w.net.Scheduler().Elapsed()
		if _, err := conn.Write([]byte("query")); err != nil {
			return err
		}
		buf := make([]byte, 64)
		n, err := conn.Read(buf)
		if err != nil {
			return err
		}
		if string(buf[:n]) != "re:query" {
			t.Errorf("reply = %q", buf[:n])
		}
		// 58ms of propagation plus a few microseconds of serialization
		// on the 100 Mbps access links.
		if d := w.net.Scheduler().Elapsed() - start; d < 58*time.Millisecond || d > 59*time.Millisecond {
			t.Errorf("UDP RTT = %v, want ~58ms", d)
		}
		return nil
	})
}

func TestComputeSerializesWork(t *testing.T) {
	n := New(1)
	t.Cleanup(n.Stop)
	z := n.AddZone("z")
	h := n.AddHost("h", "10.0.0.1", z, LinkConfig{})

	var mu sync.Mutex
	var finish []time.Duration
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		n.Scheduler().Go(func() {
			defer wg.Done()
			h.Compute(10 * time.Millisecond)
			mu.Lock()
			finish = append(finish, n.Scheduler().Elapsed())
			mu.Unlock()
		})
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	var last time.Duration
	for _, f := range finish {
		if f > last {
			last = f
		}
	}
	if want := 40 * time.Millisecond; last != want {
		t.Errorf("4 x 10ms serialized jobs finished at %v, want %v", last, want)
	}
}

func TestHostStatsCountTraffic(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 10 * time.Millisecond})
	startEcho(t, w.server, 8080)
	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		if _, err := conn.Write(make([]byte, 10000)); err != nil {
			return err
		}
		buf := make([]byte, 10000)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return err
		}
		return nil
	})
	st := w.client.Stats()
	if st.TxBytes < 10000 || st.RxBytes < 10000 {
		t.Errorf("stats = %+v, want >= 10000 bytes each way", st)
	}
	if st.TxPackets == 0 || st.RxPackets == 0 {
		t.Errorf("stats = %+v, want nonzero packets", st)
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	w := newTestWorld(t, 9, LinkConfig{Delay: 30 * time.Millisecond, Bandwidth: 12.5e6, BaseLoss: 0.005})
	startEcho(t, w.server, 8080)

	const clients = 50
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		w.net.Scheduler().Go(func() {
			defer wg.Done()
			conn, err := w.client.DialTCP("8.8.4.4:8080")
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			msg := make([]byte, 8192)
			if _, err := conn.Write(msg); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, len(msg))
			if _, err := io.ReadFull(conn, buf); err != nil {
				errs <- err
				return
			}
			errs <- nil
		})
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeterministicTimings(t *testing.T) {
	measure := func() time.Duration {
		n := New(99)
		defer n.Stop()
		cn := n.AddZone("cn")
		us := n.AddZone("us")
		n.Connect(cn, us, LinkConfig{Delay: 60 * time.Millisecond, BaseLoss: 0.01})
		client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{Delay: 2 * time.Millisecond})
		server := n.AddHost("server", "8.8.4.4", us, LinkConfig{Delay: 2 * time.Millisecond})
		startEcho(t, server, 8080)
		var d time.Duration
		run(t, n, func() error {
			conn, err := client.DialTCP("8.8.4.4:8080")
			if err != nil {
				return err
			}
			defer conn.Close()
			payload := make([]byte, 32*1024)
			start := n.Scheduler().Elapsed()
			errs := make(chan error, 1)
			n.Scheduler().Go(func() {
				_, err := conn.Write(payload)
				errs <- err
			})
			got := make([]byte, len(payload))
			if _, err := io.ReadFull(conn, got); err != nil {
				return err
			}
			if err := <-errs; err != nil {
				return err
			}
			d = n.Scheduler().Elapsed() - start
			return nil
		})
		return d
	}
	a, b := measure(), measure()
	if a != b {
		t.Errorf("same seed produced different timings: %v vs %v", a, b)
	}
}
