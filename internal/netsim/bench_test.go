package netsim

import (
	"io"
	"testing"
	"time"
)

// BenchmarkSimulatedTransfer measures simulator wall-time cost per
// simulated megabyte moved through the TCP-like stream across a lossy
// border — the number that makes day-long experiments cheap.
func BenchmarkSimulatedTransfer(b *testing.B) {
	n := New(1)
	defer n.Stop()
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	n.Connect(cn, us, LinkConfig{Delay: 73 * time.Millisecond, Bandwidth: 125e6, BaseLoss: 0.002})
	client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{Delay: 2 * time.Millisecond, Bandwidth: 12.5e6})
	server := n.AddHost("server", "8.8.4.4", us, LinkConfig{Delay: 2 * time.Millisecond, Bandwidth: 12.5e6})
	ln, err := server.Listen("tcp", ":80")
	if err != nil {
		b.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.Scheduler().Go(func() {
				defer conn.Close()
				io.Copy(io.Discard, conn)
			})
		}
	})

	const chunk = 1 << 20
	payload := make([]byte, chunk)
	b.SetBytes(chunk)
	b.ResetTimer()
	done := make(chan error, 1)
	n.Scheduler().Go(func() {
		conn, err := client.DialTCP("8.8.4.4:80")
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		for i := 0; i < b.N; i++ {
			if _, err := conn.Write(payload); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	})
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHandshake measures dial cost (events per connection setup).
func BenchmarkHandshake(b *testing.B) {
	n := New(1)
	defer n.Stop()
	z := n.AddZone("z")
	client := n.AddHost("client", "10.0.0.2", z, LinkConfig{Delay: time.Millisecond})
	server := n.AddHost("server", "8.8.4.4", z, LinkConfig{Delay: time.Millisecond})
	ln, err := server.Listen("tcp", ":80")
	if err != nil {
		b.Fatal(err)
	}
	n.Scheduler().Go(func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	})
	b.ResetTimer()
	done := make(chan error, 1)
	n.Scheduler().Go(func() {
		for i := 0; i < b.N; i++ {
			conn, err := client.DialTCP("8.8.4.4:80")
			if err != nil {
				done <- err
				return
			}
			conn.Close()
		}
		done <- nil
	})
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}
