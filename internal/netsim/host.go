package netsim

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"scholarcloud/internal/vclock"
)

// Host is a machine attached to the simulated internet. It implements
// netx.Network, so protocol code dials and listens through it exactly as
// it would through the operating system.
type Host struct {
	n      *Network
	name   string
	ip     string
	zone   *Zone
	access LinkConfig

	accessUp   dirState
	accessDown dirState

	mu        sync.Mutex
	tcpConns  map[tcpKey]*Conn
	listeners map[int]*Listener
	udpConns  map[int]*PacketConn
	nextPort  int

	// Single-core CPU model: work is serialized FIFO, so a saturated
	// server exhibits queueing delay (the mechanism behind the paper's
	// scalability experiment, Fig. 7).
	cpuFree time.Duration
	cpuCond *vclock.Cond
	// bgUtil is analytic CPU utilization imposed by flow-level client
	// cohorts; sampled packet-level work is stretched by 1/(1−bgUtil),
	// the processor-sharing response-time inflation.
	bgUtil float64

	statsMu sync.Mutex
	stats   HostStats
}

type tcpKey struct {
	localPort  int
	remoteIP   string
	remotePort int
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// IP returns the host's address.
func (h *Host) IP() string { return h.ip }

// Network returns the simulated internet this host is attached to.
func (h *Host) Network() *Network { return h.n }

// Stats returns a snapshot of the host's NIC counters.
func (h *Host) Stats() HostStats {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	return h.stats
}

// ResetStats zeroes the host's NIC counters.
func (h *Host) ResetStats() {
	h.statsMu.Lock()
	defer h.statsMu.Unlock()
	h.stats = HostStats{}
}

// Compute consumes d of CPU time on the host's single core. Concurrent
// callers are serialized, so a busy host queues work. It must be called
// from a managed goroutine.
func (h *Host) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	h.statsMu.Lock()
	h.stats.CPUBusy += d
	h.statsMu.Unlock()
	now := h.n.sched.Elapsed()
	h.mu.Lock()
	if h.bgUtil > 0 {
		d = time.Duration(float64(d) / (1 - h.bgUtil))
	}
	start := now
	if h.cpuFree > start {
		start = h.cpuFree
	}
	h.cpuFree = start + d
	wait := h.cpuFree - now
	h.mu.Unlock()
	h.n.sched.Sleep(wait)
}

// SetBackgroundUtilization imposes analytic CPU load from flow-level
// client cohorts: every subsequent Compute(d) costs d/(1−u), the M/M/1
// processor-sharing inflation a sampled request experiences on a core
// that is busy fraction u of the time with fluid work. u is clamped to
// [0, 0.99]; saturation (u ≥ 1) is the flow harness's to detect and
// report before it configures the host.
func (h *Host) SetBackgroundUtilization(u float64) {
	if u < 0 {
		u = 0
	}
	if u > 0.99 {
		u = 0.99
	}
	h.mu.Lock()
	h.bgUtil = u
	h.mu.Unlock()
}

// CPUQueueDelay reports how far behind the host's CPU currently is.
func (h *Host) CPUQueueDelay() time.Duration {
	now := h.n.sched.Elapsed()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cpuFree <= now {
		return 0
	}
	return h.cpuFree - now
}

func (h *Host) allocPort() int {
	// Caller holds h.mu.
	for {
		h.nextPort++
		if h.nextPort > 65000 {
			h.nextPort = 40001
		}
		p := h.nextPort
		if _, ok := h.listeners[p]; ok {
			continue
		}
		if _, ok := h.udpConns[p]; ok {
			continue
		}
		return p
	}
}

// dispatch delivers a packet that has fully traversed the network.
func (h *Host) dispatch(pkt *Packet) {
	h.statsMu.Lock()
	h.stats.RxPackets++
	h.stats.RxBytes += int64(pkt.Wire)
	h.statsMu.Unlock()

	switch pkt.Proto {
	case ProtoUDP:
		h.mu.Lock()
		pc := h.udpConns[pkt.Dst.Port]
		h.mu.Unlock()
		if pc != nil {
			// deliver retains the struct until ReadFrom (or Close)
			// consumes it; the datagram queue owns it from here.
			pc.deliver(pkt)
		} else {
			h.n.releasePacket(pkt)
		}
	case ProtoTCP:
		key := tcpKey{pkt.Dst.Port, pkt.Src.IP, pkt.Src.Port}
		h.mu.Lock()
		conn := h.tcpConns[key]
		var ln *Listener
		if conn == nil {
			ln = h.listeners[pkt.Dst.Port]
		}
		h.mu.Unlock()
		switch {
		case conn != nil:
			conn.handlePacket(pkt)
		case ln != nil && pkt.SYN && !pkt.ACK:
			ln.handleSYN(pkt)
		case pkt.RST:
			// No connection; nothing to reset.
		default:
			// Closed port: refuse.
			h.sendRaw(h.n.NewPacket(Packet{
				Proto: ProtoTCP,
				Src:   AddrPort{h.ip, pkt.Dst.Port},
				Dst:   pkt.Src,
				RST:   true,
				Seq:   pkt.AckNum,
				Wire:  tcpHeaderSize,
			}))
		}
		// TCP handlers copy what they keep (payload slices at most);
		// the struct's journey ends here.
		h.n.releasePacket(pkt)
	}
}

func (h *Host) sendRaw(pkt *Packet) { h.n.sendFrom(h, pkt) }

// Dial implements netx.Network. Supported networks: "tcp", "udp".
func (h *Host) Dial(network, address string) (net.Conn, error) {
	switch network {
	case "tcp":
		return h.DialTCP(address)
	case "udp":
		return h.DialUDP(address)
	default:
		return nil, fmt.Errorf("netsim: unsupported network %q", network)
	}
}

// Listen implements netx.Network. Only "tcp" is supported; use
// ListenPacket for datagrams.
func (h *Host) Listen(network, address string) (net.Listener, error) {
	if network != "tcp" {
		return nil, fmt.Errorf("netsim: unsupported network %q", network)
	}
	_, port, err := splitHostPort(address)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.listeners[port]; ok {
		return nil, fmt.Errorf("netsim: port %d already in use on %s", port, h.name)
	}
	ln := &Listener{host: h, port: port}
	ln.cond = vclock.NewCond(h.n.sched, &ln.mu)
	h.listeners[port] = ln
	return ln, nil
}

func splitHostPort(address string) (string, int, error) {
	i := strings.LastIndexByte(address, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("netsim: address %q missing port", address)
	}
	port, err := strconv.Atoi(address[i+1:])
	if err != nil || port <= 0 || port > 65535 {
		return "", 0, fmt.Errorf("netsim: bad port in address %q", address)
	}
	return address[:i], port, nil
}
