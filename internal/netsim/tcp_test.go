package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestHalfCloseDrainsBufferedData: a sender that writes then closes must
// still deliver everything before the receiver sees EOF.
func TestHalfCloseDrainsBufferedData(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 30 * time.Millisecond})
	ln, err := w.server.Listen("tcp", ":8080")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 200*1024)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	w.net.Scheduler().Go(func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write(payload)
		conn.Close() // immediately: FIN must trail the data
	})
	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		got, err := io.ReadAll(conn)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("read %d bytes, want %d, equal=%v", len(got), len(payload), bytes.Equal(got, payload))
		}
		return nil
	})
}

// TestWriteAfterCloseFails pins net.Conn semantics.
func TestWriteAfterCloseFails(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: 10 * time.Millisecond})
	startEcho(t, w.server, 8080)
	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		conn.Close()
		if _, err := conn.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
			t.Errorf("write after close: err = %v, want net.ErrClosed", err)
		}
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); !errors.Is(err, net.ErrClosed) {
			t.Errorf("read after close: err = %v, want net.ErrClosed", err)
		}
		return nil
	})
}

// TestSimultaneousBidirectionalTransfer pushes data both ways at once.
func TestSimultaneousBidirectionalTransfer(t *testing.T) {
	w := newTestWorld(t, 3, LinkConfig{Delay: 40 * time.Millisecond, BaseLoss: 0.01})
	ln, err := w.server.Listen("tcp", ":8080")
	if err != nil {
		t.Fatal(err)
	}
	const size = 100 * 1024
	up := make([]byte, size)
	down := make([]byte, size)
	for i := 0; i < size; i++ {
		up[i] = byte(i * 7)
		down[i] = byte(i * 11)
	}
	serverErr := make(chan error, 1)
	w.net.Scheduler().Go(func() {
		conn, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		defer conn.Close()
		w.net.Scheduler().Go(func() { conn.Write(down) })
		got := make([]byte, size)
		if _, err := io.ReadFull(conn, got); err != nil {
			serverErr <- err
			return
		}
		if !bytes.Equal(got, up) {
			serverErr <- errors.New("upstream corrupted")
			return
		}
		serverErr <- nil
	})
	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		w.net.Scheduler().Go(func() { conn.Write(up) })
		got := make([]byte, size)
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if !bytes.Equal(got, down) {
			t.Error("downstream corrupted")
		}
		return nil
	})
	// The server finishes on its own virtual schedule; wait from outside
	// the simulation (a managed goroutine must never block on a raw
	// channel, or virtual time freezes).
	select {
	case err := <-serverErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server side never completed")
	}
}

// TestListenerCloseUnblocksAccept pins listener teardown.
func TestListenerCloseUnblocksAccept(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: time.Millisecond})
	ln, err := w.server.Listen("tcp", ":8080")
	if err != nil {
		t.Fatal(err)
	}
	acceptErr := make(chan error, 1)
	w.net.Scheduler().Go(func() {
		_, err := ln.Accept()
		acceptErr <- err
	})
	run(t, w.net, func() error {
		w.net.Scheduler().Sleep(time.Millisecond)
		return ln.Close()
	})
	select {
	case err := <-acceptErr:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("accept err = %v, want net.ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("accept never unblocked")
	}
}

// TestPortReuseAfterListenerClose: the port must be available again.
func TestPortReuseAfterListenerClose(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: time.Millisecond})
	ln, err := w.server.Listen("tcp", ":8080")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close()
	if _, err := w.server.Listen("tcp", ":8080"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

// TestDuplicateListenRejected pins the address-in-use error.
func TestDuplicateListenRejected(t *testing.T) {
	w := newTestWorld(t, 1, LinkConfig{Delay: time.Millisecond})
	if _, err := w.server.Listen("tcp", ":8080"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.server.Listen("tcp", ":8080"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

// TestWriteDeadline pins the write-side deadline path: with the border
// partitioned, no ACKs arrive, the window and send buffer jam, and the
// blocked Write must observe its deadline. (The receiver itself never
// exerts backpressure — the simulator omits receive-window flow control,
// as documented on Conn — so a partition is what genuinely jams a
// sender.)
func TestWriteDeadline(t *testing.T) {
	n := New(1)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	ks := &killSwitch{}
	n.Connect(cn, us, LinkConfig{Delay: 10 * time.Millisecond}).SetInspector(ks)
	client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{})
	server := n.AddHost("server", "8.8.4.4", us, LinkConfig{})
	startEcho(t, server, 8080)
	run(t, n, func() error {
		conn, err := client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		ks.dead = true // partition: nothing will be ACKed
		conn.SetWriteDeadline(n.Clock().Now().Add(2 * time.Second))
		payload := make([]byte, 2<<20) // far beyond window + send buffer
		_, err = conn.Write(payload)
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Errorf("write err = %v, want timeout", err)
		}
		return nil
	})
}

// TestRetransmitCounters: loss must surface in Conn.Retransmits.
func TestRetransmitCounters(t *testing.T) {
	w := newTestWorld(t, 77, LinkConfig{Delay: 30 * time.Millisecond, BaseLoss: 0.05})
	startEcho(t, w.server, 8080)
	run(t, w.net, func() error {
		conn, err := w.client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		payload := make([]byte, 128*1024)
		errs := make(chan error, 1)
		w.net.Scheduler().Go(func() {
			_, err := conn.Write(payload)
			errs <- err
		})
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if err := <-errs; err != nil {
			return err
		}
		if conn.Retransmits() == 0 {
			t.Error("no retransmissions recorded at 5% loss")
		}
		if conn.SRTT() <= 0 {
			t.Error("SRTT not estimated")
		}
		return nil
	})
}

// TestDelayedAckCoalesces: a multi-segment burst must generate fewer
// ACKs than segments.
func TestDelayedAckCoalesces(t *testing.T) {
	n := New(1)
	t.Cleanup(n.Stop)
	z := n.AddZone("z")
	client := n.AddHost("client", "10.0.0.2", z, LinkConfig{Delay: 5 * time.Millisecond})
	server := n.AddHost("server", "8.8.4.4", z, LinkConfig{Delay: 5 * time.Millisecond})
	startEcho(t, server, 8080)

	var dataPkts, ackPkts int
	n.SetTrace(func(pkt *Packet) {
		if pkt.Src.IP == "10.0.0.2" && pkt.Proto == ProtoTCP {
			if len(pkt.Payload) > 0 {
				dataPkts++
			} else if pkt.ACK && !pkt.SYN && !pkt.FIN {
				ackPkts++
			}
		}
	})
	defer n.SetTrace(nil)
	run(t, n, func() error {
		conn, err := client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		payload := make([]byte, 56*1024) // 40 segments
		errs := make(chan error, 1)
		n.Scheduler().Go(func() {
			_, err := conn.Write(payload)
			errs <- err
		})
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		return <-errs
	})
	// The echo sends ~40 segments back; client ACKs should be roughly
	// half that (every second segment), not one per segment.
	if ackPkts >= 40 {
		t.Errorf("client sent %d pure ACKs for ~40 inbound segments; delayed ACKs not coalescing", ackPkts)
	}
	if ackPkts == 0 {
		t.Error("no ACKs at all")
	}
}
