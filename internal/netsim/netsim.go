// Package netsim implements a deterministic, packet-level internet
// simulator used as the measurement substrate for the reproduction.
//
// The simulated world is a graph of zones (autonomous networks such as
// CERNET, the Chinese commodity internet, and the US west coast) joined by
// links with one-way propagation delay, finite bandwidth with FIFO
// store-and-forward queueing, and a base random-loss rate. Hosts attach to
// a zone through an access link. A link may carry an Inspector — the Great
// Firewall in this repository — which observes every packet crossing it
// and can pass, drop, or reset the flow, and can inject forged packets
// (RSTs, poisoned DNS answers) of its own.
//
// On top of the packet layer, netsim provides a TCP-like reliable byte
// stream implementing net.Conn (three-way handshake, sliding window,
// retransmission timeouts, fast retransmit, FIN/RST teardown) and a UDP-
// like datagram service. Packet loss therefore affects connection latency
// exactly the way the paper measures it: through retransmissions and
// stalls, not through an abstract penalty.
//
// Everything runs on a vclock.Scheduler, so experiments that simulate a
// full day of page loads complete in milliseconds of wall time and are
// reproducible run to run.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scholarcloud/internal/metrics"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/vclock"
)

// Protocol numbers for Packet.Proto.
const (
	ProtoTCP = "tcp"
	ProtoUDP = "udp"
)

// Header sizes charged to the wire, in bytes.
const (
	tcpHeaderSize = 40 // IP + TCP
	udpHeaderSize = 28 // IP + UDP
)

// MSS is the maximum TCP segment payload carried by one packet.
const MSS = 1400

// AddrPort identifies one end of a flow.
type AddrPort struct {
	IP   string
	Port int
}

// String formats the endpoint as "ip:port".
func (a AddrPort) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// Addr adapts an AddrPort to net.Addr.
type Addr struct {
	Net string
	AP  AddrPort
}

// Network implements net.Addr.
func (a Addr) Network() string { return a.Net }

// String implements net.Addr.
func (a Addr) String() string { return a.AP.String() }

// Packet is the unit of transmission. TCP control fields are only
// meaningful when Proto is ProtoTCP.
type Packet struct {
	ID    uint64
	Proto string
	Src   AddrPort
	Dst   AddrPort

	SYN, ACK, FIN, RST bool
	Seq, AckNum        uint32

	Payload []byte
	Wire    int // bytes on the wire including headers

	// Injected marks packets forged by an inspector (GFW RSTs, poisoned
	// DNS answers) so endpoint counters can distinguish them.
	Injected bool
}

// FlowKey returns a direction-independent identity for the packet's flow.
func (p *Packet) FlowKey() FlowKey {
	a := flowEnd{p.Src.IP, p.Src.Port}
	b := flowEnd{p.Dst.IP, p.Dst.Port}
	if b.less(a) {
		a, b = b, a
	}
	return FlowKey{Proto: p.Proto, A: a, B: b}
}

type flowEnd struct {
	IP   string
	Port int
}

func (e flowEnd) less(o flowEnd) bool {
	if e.IP != o.IP {
		return e.IP < o.IP
	}
	return e.Port < o.Port
}

// FlowKey identifies a bidirectional flow.
type FlowKey struct {
	Proto string
	A, B  flowEnd
}

// Verdict is an Inspector's decision about a packet.
type Verdict int

// Inspector verdicts.
const (
	// VerdictPass forwards the packet unchanged.
	VerdictPass Verdict = iota
	// VerdictDrop silently discards the packet.
	VerdictDrop
	// VerdictReset discards the packet and injects TCP RSTs toward both
	// endpoints (the GFW's classic connection-reset behaviour).
	VerdictReset
)

// Inspector observes packets crossing a link. Inspect runs on the
// simulator's driver goroutine and must not block; side effects that need
// to block (active probing) should be started with Network.Clock().
type Inspector interface {
	Inspect(pkt *Packet) Verdict
}

// LinkConfig describes one link's characteristics. Bandwidth of zero means
// infinite (no serialization delay, no queueing).
type LinkConfig struct {
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Bandwidth is the per-direction capacity in bytes per second.
	Bandwidth float64
	// MaxQueue is the maximum queueing delay before tail drop.
	// Zero means a default of 500ms.
	MaxQueue time.Duration
	// BaseLoss is the probability a packet is lost on this link for
	// reasons unrelated to censorship (congestion on the real path).
	BaseLoss float64
	// Jitter adds a deterministic pseudo-random [0,Jitter) component to
	// each packet's propagation delay, modeling queueing variance along
	// the real path. Mild reordering under jitter is handled by the
	// transport (out-of-order buffer), as on real networks.
	Jitter time.Duration
}

func (c LinkConfig) maxQueue() time.Duration {
	if c.MaxQueue <= 0 {
		return 500 * time.Millisecond
	}
	return c.MaxQueue
}

// Zone is a region of the simulated internet.
type Zone struct {
	name  string
	links []*link
}

// Name returns the zone's name.
func (z *Zone) Name() string { return z.name }

type link struct {
	zones     [2]*Zone
	cfg       LinkConfig
	inspector Inspector
	dir       [2]dirState // dir[0]: zones[0]->zones[1]
	stats     LinkStats   // guarded by Network.mu
}

// LinkStats counts traffic admitted onto a link (both directions,
// post-inspection, post-queue-admission; packets later lost to random
// loss are still counted as transmitted).
type LinkStats struct {
	Packets int64
	Bytes   int64
	// DirBytes splits Bytes by direction: DirBytes[0] is traffic in the
	// zones[0]→zones[1] direction of the original Connect call. The
	// flow-level harness uses the split to calibrate per-direction fluid
	// load (requests upstream, responses downstream).
	DirBytes [2]int64
}

type dirState struct {
	nextFree time.Duration // virtual time the transmitter becomes idle
	// bg is analytic background load (bytes/sec) imposed by flow-level
	// client cohorts. Sampled packet-level traffic serializes at the
	// link's residual bandwidth (capacity minus bg), which is how fluid
	// cohorts and real packets share a link without per-packet cost.
	bg float64
}

// minResidualFrac floors the residual bandwidth left to packet traffic
// under fluid load at 1% of the link's capacity, so an (over)saturating
// cohort slows sampled clients drastically but never divides by zero.
// Saturation itself is detected and reported analytically by the
// flow-level harness before it configures the load.
const minResidualFrac = 0.01

type hop struct {
	l      *link
	dirIdx int
}

// DropReason classifies why a packet was lost.
type DropReason int

// Drop reasons.
const (
	DropLoss DropReason = iota // random base loss
	DropQueue
	DropInspector
	DropNoRoute
	numDropReasons
)

// String names the reason for metrics and traces.
func (r DropReason) String() string {
	switch r {
	case DropLoss:
		return "loss"
	case DropQueue:
		return "queue"
	case DropInspector:
		return "inspector"
	case DropNoRoute:
		return "noroute"
	default:
		return "unknown"
	}
}

// HostStats are per-host packet and byte counters.
type HostStats struct {
	TxPackets    int64
	RxPackets    int64
	TxBytes      int64
	RxBytes      int64
	LostOutbound int64 // packets this host sent that the network dropped
	LostInbound  int64 // packets addressed to this host that were dropped
	// CPUBusy is total virtual CPU time consumed via Compute (before
	// background-utilization inflation): the per-request demand the
	// flow-level harness calibrates its fluid cohorts from.
	CPUBusy time.Duration
}

// LossRate returns the fraction of this host's packets (both directions)
// that the network dropped.
func (s HostStats) LossRate() float64 {
	lost := s.LostOutbound + s.LostInbound
	total := s.TxPackets + s.RxPackets + s.LostInbound
	if total == 0 {
		return 0
	}
	return float64(lost) / float64(total)
}

// Network is the simulated internet.
type Network struct {
	sched *vclock.Scheduler
	seed  uint64
	rand  *simRand

	mu    sync.Mutex
	zones map[string]*Zone
	hosts map[string]*Host // by IP
	paths map[[2]*Zone][]hop

	pktID atomic.Uint64

	// pktFree recycles Packet structs: every packet whose journey ends
	// inside the simulator (delivered, dropped, or read from a datagram
	// queue) returns here and is reused by the next NewPacket. A plain
	// freelist under mu — rather than a sync.Pool — keeps reuse
	// deterministic and keyed to the world, never to GC timing.
	pktFree []*Packet

	trace     atomic.Pointer[func(pkt *Packet)]
	flowTrace atomic.Pointer[obs.Trace]

	// Obs handles are resolved once in Observe; nil until then so the
	// packet path pays a single nil check when unobserved.
	obsPackets *metrics.Counter
	obsInject  *metrics.Counter
	obsRetrans *metrics.Counter
	obsDrops   [numDropReasons]*metrics.Counter
}

// Observe registers the network's packet, drop, injection and
// retransmission counters with reg. Call once, before traffic starts.
func (n *Network) Observe(reg *obs.Registry) {
	n.obsPackets = reg.Counter("netsim.packets")
	n.obsInject = reg.Counter("netsim.injected")
	n.obsRetrans = reg.Counter("netsim.tcp.retransmits")
	for r := DropReason(0); r < numDropReasons; r++ {
		n.obsDrops[r] = reg.Counter("netsim.drops." + r.String())
	}
}

// SetFlowTrace installs (or, with nil, removes) a flow tracer that
// receives a span for every drop, forged injection and TCP retransmission
// in the network.
func (n *Network) SetFlowTrace(t *obs.Trace) { n.flowTrace.Store(t) }

// NewPacket returns a Packet initialized to v, reusing a recycled struct
// when one is available. Senders that build their packets through it (the
// TCP/UDP layers and inspectors injecting forged traffic do) make the
// per-packet allocation disappear in steady state; a packet built with a
// plain literal still works and simply joins the pool when it dies.
func (n *Network) NewPacket(v Packet) *Packet {
	n.mu.Lock()
	var pkt *Packet
	if ln := len(n.pktFree); ln > 0 {
		pkt = n.pktFree[ln-1]
		n.pktFree[ln-1] = nil
		n.pktFree = n.pktFree[:ln-1]
	}
	n.mu.Unlock()
	if pkt == nil {
		pkt = &Packet{}
	}
	*pkt = v
	return pkt
}

// releasePacket recycles a packet whose journey has ended. Payload is
// cleared so the pool never pins wire bytes (TCP receivers retain payload
// slices, not the structs). Callers must not touch pkt afterwards.
func (n *Network) releasePacket(pkt *Packet) {
	*pkt = Packet{}
	n.mu.Lock()
	n.pktFree = append(n.pktFree, pkt)
	n.mu.Unlock()
}

// SetTrace installs a callback observing every packet as it is sent
// (nil disables). Used by tests and traffic-debugging tools. The Packet
// is recycled once it is delivered or dropped; callbacks must not retain
// it past their return.
func (n *Network) SetTrace(fn func(pkt *Packet)) {
	if fn == nil {
		n.trace.Store(nil)
		return
	}
	n.trace.Store(&fn)
}

// New creates an empty simulated internet driven by its own scheduler.
// seed controls all stochastic behaviour (packet loss draws).
func New(seed uint64) *Network {
	return &Network{
		sched: vclock.New(),
		seed:  seed,
		rand:  &simRand{key: splitmix64(seed ^ 0xE17825)},
		zones: make(map[string]*Zone),
		hosts: make(map[string]*Host),
		paths: make(map[[2]*Zone][]hop),
	}
}

// Scheduler exposes the underlying virtual-time scheduler.
func (n *Network) Scheduler() *vclock.Scheduler { return n.sched }

// Clock returns a netx.Clock running on the simulation's virtual time.
func (n *Network) Clock() netx.Clock { return simClock{n.sched} }

// Stop halts the simulation's scheduler.
func (n *Network) Stop() { n.sched.Stop() }

// Wait blocks until the simulation quiesces (no runnable goroutines, no
// pending events).
func (n *Network) Wait() { n.sched.Wait() }

// AddZone creates a zone.
func (n *Network) AddZone(name string) *Zone {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.zones[name]; ok {
		panic("netsim: duplicate zone " + name)
	}
	z := &Zone{name: name}
	n.zones[name] = z
	return z
}

// Connect joins two zones with a link. The returned handle can attach an
// inspector.
func (n *Network) Connect(a, b *Zone, cfg LinkConfig) *LinkHandle {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := &link{zones: [2]*Zone{a, b}, cfg: cfg}
	a.links = append(a.links, l)
	b.links = append(b.links, l)
	n.paths = make(map[[2]*Zone][]hop) // invalidate route cache
	return &LinkHandle{n: n, l: l}
}

// LinkHandle allows post-construction configuration of a link.
type LinkHandle struct {
	n *Network
	l *link
}

// SetInspector installs an inspector that sees every packet crossing the
// link in either direction.
func (h *LinkHandle) SetInspector(i Inspector) {
	h.n.mu.Lock()
	defer h.n.mu.Unlock()
	h.l.inspector = i
}

// Config returns the link's current characteristics.
func (h *LinkHandle) Config() LinkConfig {
	h.n.mu.Lock()
	defer h.n.mu.Unlock()
	return h.l.cfg
}

// SetConfig replaces the link's characteristics. The per-packet path is
// resolved (and the config copied) at send time under the network mutex,
// so every packet sent after SetConfig returns experiences the new delay,
// bandwidth, loss and jitter — the hook fault injectors use to impair a
// live link mid-experiment. Packets already in flight are unaffected.
func (h *LinkHandle) SetConfig(cfg LinkConfig) {
	h.n.mu.Lock()
	defer h.n.mu.Unlock()
	h.l.cfg = cfg
}

// Stats returns the traffic transmitted over the link so far (both
// directions combined).
func (h *LinkHandle) Stats() LinkStats {
	h.n.mu.Lock()
	defer h.n.mu.Unlock()
	return h.l.stats
}

// SetBackgroundLoad imposes analytic fluid load (bytes/sec) on the link:
// ab in the zones[0]→zones[1] direction of the original Connect call, ba
// in the reverse. Packet-level traffic sent while the load is in place
// serializes at the residual bandwidth (capacity − load, floored at 1% of
// capacity), modeling a cohort of flow-level clients contending for the
// link without simulating their packets. Zero restores full capacity.
func (h *LinkHandle) SetBackgroundLoad(ab, ba float64) {
	h.n.mu.Lock()
	defer h.n.mu.Unlock()
	h.l.dir[0].bg = ab
	h.l.dir[1].bg = ba
}

// BackgroundLoad reports the fluid load currently imposed on the link in
// each direction (bytes/sec).
func (h *LinkHandle) BackgroundLoad() (ab, ba float64) {
	h.n.mu.Lock()
	defer h.n.mu.Unlock()
	return h.l.dir[0].bg, h.l.dir[1].bg
}

// AddHost attaches a new host to zone with the given access-link
// characteristics.
func (n *Network) AddHost(name, ip string, zone *Zone, access LinkConfig) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[ip]; ok {
		panic("netsim: duplicate host IP " + ip)
	}
	h := &Host{
		n:         n,
		name:      name,
		ip:        ip,
		zone:      zone,
		access:    access,
		tcpConns:  make(map[tcpKey]*Conn),
		listeners: make(map[int]*Listener),
		udpConns:  make(map[int]*PacketConn),
		nextPort:  40000,
	}
	h.cpuCond = vclock.NewCond(n.sched, &h.mu)
	n.hosts[ip] = h
	return h
}

// HostByIP returns the host with the given IP, or nil.
func (n *Network) HostByIP(ip string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[ip]
}

// route returns the hop sequence between two zones (excluding access
// links), computing and caching a BFS shortest path.
func (n *Network) route(from, to *Zone) ([]hop, bool) {
	if from == to {
		return nil, true
	}
	key := [2]*Zone{from, to}
	if p, ok := n.paths[key]; ok {
		return p, p != nil
	}
	type node struct {
		z   *Zone
		via []hop
	}
	visited := map[*Zone]bool{from: true}
	queue := []node{{z: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range cur.z.links {
			dirIdx := 0
			next := l.zones[1]
			if l.zones[0] != cur.z {
				dirIdx = 1
				next = l.zones[0]
			}
			if visited[next] {
				continue
			}
			visited[next] = true
			via := append(append([]hop(nil), cur.via...), hop{l: l, dirIdx: dirIdx})
			if next == to {
				n.paths[key] = via
				return via, true
			}
			queue = append(queue, node{z: next, via: via})
		}
	}
	n.paths[key] = nil
	return nil, false
}

// splitmix64 hashes x into a well-mixed 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// lossDraw returns a deterministic pseudo-random value in [0,1) for a
// (packet, hop) pair.
func (n *Network) lossDraw(pktID uint64, hopIdx int) float64 {
	h := splitmix64(n.seed ^ splitmix64(pktID) ^ uint64(hopIdx)*0x9e3779b97f4a7c15)
	return float64(h>>11) / float64(1<<53)
}

// SendFrom injects a packet into the network as if transmitted by host h.
// It is the low-level send used by the TCP and UDP layers.
func (n *Network) sendFrom(h *Host, pkt *Packet) {
	pkt.ID = n.pktID.Add(1)
	if n.obsPackets != nil {
		n.obsPackets.Inc()
	}
	if fn := n.trace.Load(); fn != nil {
		(*fn)(pkt)
	}
	h.statsMu.Lock()
	h.stats.TxPackets++
	h.stats.TxBytes += int64(pkt.Wire)
	h.statsMu.Unlock()

	n.mu.Lock()
	dst, ok := n.hosts[pkt.Dst.IP]
	if !ok {
		n.mu.Unlock()
		n.recordDrop(h, nil, pkt, DropNoRoute)
		n.releasePacket(pkt)
		return
	}
	zonePath, ok := n.route(h.zone, dst.zone)
	n.mu.Unlock()
	if !ok {
		n.recordDrop(h, dst, pkt, DropNoRoute)
		n.releasePacket(pkt)
		return
	}
	// Full path: source access link, zone hops, destination access link.
	hops := make([]pathStep, 0, len(zonePath)+2)
	hops = append(hops, pathStep{cfg: h.access, dir: &h.accessUp})
	for _, zh := range zonePath {
		hops = append(hops, pathStep{
			cfg:       zh.l.cfg,
			dir:       &zh.l.dir[zh.dirIdx],
			inspector: zh.l.inspector,
			fromZone:  zh.l.zones[zh.dirIdx],
			link:      zh.l,
			dirIdx:    zh.dirIdx,
		})
	}
	hops = append(hops, pathStep{cfg: dst.access, dir: &dst.accessDown})
	n.step(h, dst, pkt, hops, 0)
}

// InjectToward delivers a forged packet from the given zone toward the
// packet's destination, used by inspectors for RST injection and DNS
// poisoning. The packet does not traverse the zone's own inspectors again
// (the GFW does not censor itself).
func (n *Network) InjectToward(from *Zone, pkt *Packet) {
	pkt.ID = n.pktID.Add(1)
	pkt.Injected = true
	if n.obsInject != nil {
		n.obsInject.Inc()
	}
	if t := n.flowTrace.Load(); t != nil {
		kind := "forged"
		if pkt.RST {
			kind = "rst"
		}
		t.Addf("netsim", "inject", "%s %s -> %s", kind, pkt.Src, pkt.Dst)
	}
	n.mu.Lock()
	dst, ok := n.hosts[pkt.Dst.IP]
	if !ok {
		n.mu.Unlock()
		n.releasePacket(pkt)
		return
	}
	zonePath, ok := n.route(from, dst.zone)
	n.mu.Unlock()
	if !ok {
		n.releasePacket(pkt)
		return
	}
	hops := make([]pathStep, 0, len(zonePath)+1)
	for _, zh := range zonePath {
		hops = append(hops, pathStep{cfg: zh.l.cfg, dir: &zh.l.dir[zh.dirIdx], link: zh.l, dirIdx: zh.dirIdx})
	}
	hops = append(hops, pathStep{cfg: dst.access, dir: &dst.accessDown})
	n.step(nil, dst, pkt, hops, 0)
}

type pathStep struct {
	cfg       LinkConfig
	dir       *dirState
	inspector Inspector
	// fromZone is the zone at the ingress of this hop (nil for access
	// links); forged packets triggered by an inspector verdict originate
	// here so they obey the same path delays as real traffic.
	fromZone *Zone
	// link is the zone link this step transmits over (nil for access
	// links); used for per-link traffic accounting. dirIdx is the
	// direction index into link.dir/stats.DirBytes.
	link   *link
	dirIdx int
}

// step simulates the packet's traversal of hops[i] and schedules the next
// hop (or final delivery) at the computed arrival time.
func (n *Network) step(src, dst *Host, pkt *Packet, hops []pathStep, i int) {
	if i >= len(hops) {
		dst.dispatch(pkt)
		return
	}
	st := &hops[i]

	// Inspection happens before transmission: middleboxes sit at the
	// ingress of the border link.
	if st.inspector != nil {
		switch st.inspector.Inspect(pkt) {
		case VerdictDrop:
			n.recordDrop(src, dst, pkt, DropInspector)
			n.releasePacket(pkt)
			return
		case VerdictReset:
			n.recordDrop(src, dst, pkt, DropInspector)
			if pkt.Proto == ProtoTCP {
				n.injectResetPair(pkt, st.fromZone)
			}
			n.releasePacket(pkt)
			return
		}
	}

	now := n.sched.Elapsed()
	n.mu.Lock()
	start := now
	if st.dir.nextFree > start {
		start = st.dir.nextFree
	}
	queueDelay := start - now
	if queueDelay > st.cfg.maxQueue() {
		n.mu.Unlock()
		n.recordDrop(src, dst, pkt, DropQueue)
		n.releasePacket(pkt)
		return
	}
	var txTime time.Duration
	if bw := st.cfg.Bandwidth; bw > 0 {
		if st.dir.bg > 0 {
			// Fluid cohorts occupy part of the capacity; packets
			// serialize at what is left.
			bw -= st.dir.bg
			if min := st.cfg.Bandwidth * minResidualFrac; bw < min {
				bw = min
			}
		}
		txTime = time.Duration(float64(pkt.Wire) / bw * float64(time.Second))
	}
	st.dir.nextFree = start + txTime
	if st.link != nil {
		st.link.stats.Packets++
		st.link.stats.Bytes += int64(pkt.Wire)
		st.link.stats.DirBytes[st.dirIdx] += int64(pkt.Wire)
	}
	n.mu.Unlock()

	if st.cfg.BaseLoss > 0 && n.lossDraw(pkt.ID, i) < st.cfg.BaseLoss {
		n.recordDrop(src, dst, pkt, DropLoss)
		n.releasePacket(pkt)
		return
	}

	arrive := start + txTime + st.cfg.Delay
	if st.cfg.Jitter > 0 {
		arrive += time.Duration(n.lossDraw(pkt.ID^0xA5A5A5A5, i) * float64(st.cfg.Jitter))
	}
	n.sched.Event(arrive-now, func() {
		n.step(src, dst, pkt, hops, i+1)
	})
}

// injectResetPair forges RST packets toward both endpoints of a TCP flow.
// Both packets originate at the censoring link's ingress zone, so the RST
// toward the far endpoint traverses the border link itself and cannot
// overtake traffic already in flight (real GFW RSTs race the genuine
// stream from the border router, they do not teleport past it).
func (n *Network) injectResetPair(orig *Packet, at *Zone) {
	if at == nil {
		n.mu.Lock()
		if h := n.hosts[orig.Src.IP]; h != nil {
			at = h.zone
		}
		n.mu.Unlock()
		if at == nil {
			return
		}
	}
	mk := func(src, dst AddrPort, seq uint32) *Packet {
		return n.NewPacket(Packet{
			Proto: ProtoTCP,
			Src:   src, Dst: dst,
			RST:  true,
			Seq:  seq,
			Wire: tcpHeaderSize,
		})
	}
	// Forged RSTs claim to come from the opposite endpoint.
	n.InjectToward(at, mk(orig.Dst, orig.Src, orig.AckNum))
	n.InjectToward(at, mk(orig.Src, orig.Dst, orig.Seq+uint32(len(orig.Payload))))
}

func (n *Network) recordDrop(src, dst *Host, pkt *Packet, reason DropReason) {
	if src != nil {
		src.statsMu.Lock()
		src.stats.LostOutbound++
		src.statsMu.Unlock()
	}
	if dst != nil {
		dst.statsMu.Lock()
		dst.stats.LostInbound++
		dst.statsMu.Unlock()
	}
	if c := n.obsDrops[reason]; c != nil {
		c.Inc()
	}
	if t := n.flowTrace.Load(); t != nil {
		t.Addf("netsim", "drop", "%s %s %s -> %s (%d bytes)",
			reason, pkt.Proto, pkt.Src, pkt.Dst, pkt.Wire)
	}
}

// noteRetransmit is called by the TCP layer every time a segment is sent
// again (RTO expiry or fast retransmit).
func (n *Network) noteRetransmit(local, remote AddrPort) {
	if n.obsRetrans != nil {
		n.obsRetrans.Inc()
	}
	if t := n.flowTrace.Load(); t != nil {
		t.Addf("netsim", "retransmit", "%s -> %s", local, remote)
	}
}

// simClock adapts the scheduler to netx.Clock.
type simClock struct{ s *vclock.Scheduler }

func (c simClock) Now() time.Time        { return c.s.Now() }
func (c simClock) Sleep(d time.Duration) { c.s.Sleep(d) }
func (c simClock) AfterFunc(d time.Duration, fn func()) netx.Timer {
	return c.s.AfterFunc(d, fn)
}

// simSync adapts vclock conds to netx.Sync.
type simSync struct{ s *vclock.Scheduler }

// NewCond implements netx.Sync.
func (y simSync) NewCond(l sync.Locker) netx.Cond { return vclock.NewCond(y.s, l) }

// simRand is the simulation's deterministic entropy source: a seeded
// splitmix64 counter stream. Because the scheduler serializes managed
// goroutines, draw ORDER within a world is deterministic, so every nonce,
// IV, and handshake key — and everything the censor's entropy heuristics
// decide from the resulting wire bytes — is a pure function of the seed.
type simRand struct {
	mu  sync.Mutex
	ctr uint64
	key uint64
}

func (r *simRand) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Single-byte reads are served statelessly, without advancing the
	// counter. crypto/internal/randutil.MaybeReadByte — called by the
	// stdlib crypto packages (ecdh, ecdsa, rsa) precisely to stop callers
	// from relying on a deterministic rand.Reader — consumes one byte on
	// a *runtime-random* 50% of calls; if that read advanced the stream,
	// every key generated afterwards would depend on a coin flip the
	// scheduler cannot serialize, and no seeded world would replay.
	if len(p) == 1 {
		p[0] = byte(splitmix64(r.key ^ r.ctr ^ 0xB17E))
		return 1, nil
	}
	for i := 0; i < len(p); i += 8 {
		r.ctr++
		v := splitmix64(r.key ^ r.ctr)
		for j := 0; j < 8 && i+j < len(p); j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
	return len(p), nil
}

// Env returns the netx environment (clock, spawner, sync, entropy) backed
// by this simulation's scheduler and seed.
func (n *Network) Env() netx.Env {
	return netx.Env{
		Clock: simClock{n.sched},
		Spawn: n.sched,
		Sync:  simSync{n.sched},
		Rand:  n.rand,
	}
}
