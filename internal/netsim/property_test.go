package netsim

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// TestTransferIntegrityAcrossSeedsProperty is the transport's core
// property: under any loss rate the simulator can produce, every byte
// arrives exactly once and in order.
func TestTransferIntegrityAcrossSeedsProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		for _, loss := range []float64{0.005, 0.03, 0.08} {
			n := New(seed)
			cn := n.AddZone("cn")
			us := n.AddZone("us")
			n.Connect(cn, us, LinkConfig{Delay: 40 * time.Millisecond, BaseLoss: loss, Jitter: 5 * time.Millisecond})
			client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{Delay: time.Millisecond})
			server := n.AddHost("server", "8.8.4.4", us, LinkConfig{Delay: time.Millisecond})
			startEcho(t, server, 8080)

			payload := make([]byte, 48*1024)
			for i := range payload {
				payload[i] = byte(int(seed)*31 + i*7)
			}
			run(t, n, func() error {
				conn, err := client.DialTCP("8.8.4.4:8080")
				if err != nil {
					return err
				}
				defer conn.Close()
				errs := make(chan error, 1)
				n.Scheduler().Go(func() {
					_, err := conn.Write(payload)
					errs <- err
				})
				got := make([]byte, len(payload))
				if _, err := io.ReadFull(conn, got); err != nil {
					return err
				}
				if err := <-errs; err != nil {
					return err
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("seed %d loss %v: corrupted transfer", seed, loss)
				}
				return nil
			})
			n.Stop()
		}
	}
}

// TestJitterReordersButPreservesStream checks that jitter-induced
// reordering is absorbed by the receiver's out-of-order buffer.
func TestJitterReordersButPreservesStream(t *testing.T) {
	n := New(17)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	// Aggressive jitter (of the same order as the delay) forces frequent
	// reordering.
	n.Connect(cn, us, LinkConfig{Delay: 10 * time.Millisecond, Jitter: 10 * time.Millisecond})
	client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{})
	server := n.AddHost("server", "8.8.4.4", us, LinkConfig{})
	startEcho(t, server, 8080)

	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	run(t, n, func() error {
		conn, err := client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		errs := make(chan error, 1)
		n.Scheduler().Go(func() {
			_, err := conn.Write(payload)
			errs <- err
		})
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		if err := <-errs; err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			t.Error("stream corrupted under reordering")
		}
		return nil
	})
}

// TestPartitionMidTransfer verifies failure injection: an inspector that
// starts dropping everything mid-flow stalls the transfer and the writer
// eventually errors out via its deadline.
type killSwitch struct{ dead bool }

func (k *killSwitch) Inspect(*Packet) Verdict {
	if k.dead {
		return VerdictDrop
	}
	return VerdictPass
}

func TestPartitionMidTransfer(t *testing.T) {
	n := New(5)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	ks := &killSwitch{}
	n.Connect(cn, us, LinkConfig{Delay: 20 * time.Millisecond}).SetInspector(ks)
	client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{})
	server := n.AddHost("server", "8.8.4.4", us, LinkConfig{})
	startEcho(t, server, 8080)

	run(t, n, func() error {
		conn, err := client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("before")); err != nil {
			return err
		}
		buf := make([]byte, 6)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return err
		}
		// Partition the border.
		ks.dead = true
		conn.Write([]byte("after"))
		conn.SetReadDeadline(n.Clock().Now().Add(10 * time.Second))
		_, err = conn.Read(buf)
		if err == nil {
			t.Error("read succeeded across a partition")
		}
		return nil
	})
}

// TestQueueOverflowDropsTail exercises the bandwidth queue's tail drop.
func TestQueueOverflowDropsTail(t *testing.T) {
	n := New(9)
	t.Cleanup(n.Stop)
	cn := n.AddZone("cn")
	us := n.AddZone("us")
	// Tiny bandwidth and a short queue: a burst must overflow.
	n.Connect(cn, us, LinkConfig{Delay: 5 * time.Millisecond, Bandwidth: 50e3, MaxQueue: 50 * time.Millisecond})
	client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{})
	server := n.AddHost("server", "8.8.4.4", us, LinkConfig{})
	startEcho(t, server, 8080)

	run(t, n, func() error {
		conn, err := client.DialTCP("8.8.4.4:8080")
		if err != nil {
			return err
		}
		defer conn.Close()
		payload := make([]byte, 64*1024)
		errs := make(chan error, 1)
		n.Scheduler().Go(func() {
			_, err := conn.Write(payload)
			errs <- err
		})
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, got); err != nil {
			return err
		}
		return <-errs
	})
	if st := client.Stats(); st.LostOutbound == 0 {
		t.Error("no queue drops under a saturating burst")
	}
}

// TestDeterminismAcrossRunsWithJitter confirms jitter stays reproducible.
func TestDeterminismAcrossRunsWithJitter(t *testing.T) {
	measure := func() time.Duration {
		n := New(23)
		defer n.Stop()
		cn := n.AddZone("cn")
		us := n.AddZone("us")
		n.Connect(cn, us, LinkConfig{Delay: 30 * time.Millisecond, Jitter: 8 * time.Millisecond, BaseLoss: 0.01})
		client := n.AddHost("client", "10.0.0.2", cn, LinkConfig{})
		server := n.AddHost("server", "8.8.4.4", us, LinkConfig{})
		startEcho(t, server, 8080)
		var d time.Duration
		run(t, n, func() error {
			conn, err := client.DialTCP("8.8.4.4:8080")
			if err != nil {
				return err
			}
			defer conn.Close()
			start := n.Scheduler().Elapsed()
			payload := make([]byte, 16*1024)
			errs := make(chan error, 1)
			n.Scheduler().Go(func() {
				_, err := conn.Write(payload)
				errs <- err
			})
			got := make([]byte, len(payload))
			if _, err := io.ReadFull(conn, got); err != nil {
				return err
			}
			if err := <-errs; err != nil {
				return err
			}
			d = n.Scheduler().Elapsed() - start
			return nil
		})
		return d
	}
	if a, b := measure(), measure(); a != b {
		t.Errorf("jittered runs diverged: %v vs %v", a, b)
	}
}
