package netsim

import (
	"fmt"
	"net"
	"sync"
	"time"

	"scholarcloud/internal/vclock"
)

// PacketConn is an unreliable datagram endpoint over the simulated
// network. It implements net.PacketConn. DNS in this repository runs over
// it, which is what exposes it to the GFW's poisoning injector.
type PacketConn struct {
	host *Host
	port int

	mu       sync.Mutex
	cond     *vclock.Cond
	queue    []*Packet
	closed   bool
	deadline time.Time
	ddTimer  *vclock.Timer
}

// ListenPacket opens a UDP endpoint on the given port (0 allocates an
// ephemeral port).
func (h *Host) ListenPacket(port int) (*PacketConn, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if port == 0 {
		port = h.allocPort()
	} else if _, ok := h.udpConns[port]; ok {
		return nil, fmt.Errorf("netsim: udp port %d already in use on %s", port, h.name)
	}
	pc := &PacketConn{host: h, port: port}
	pc.cond = vclock.NewCond(h.n.sched, &pc.mu)
	h.udpConns[port] = pc
	return pc, nil
}

func (pc *PacketConn) deliver(pkt *Packet) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed {
		pc.host.n.releasePacket(pkt)
		return
	}
	pc.queue = append(pc.queue, pkt)
	pc.cond.Signal()
}

// ReadFrom implements net.PacketConn. It must be called from a managed
// goroutine.
func (pc *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for {
		if len(pc.queue) > 0 {
			pkt := pc.queue[0]
			pc.queue[0] = nil
			pc.queue = pc.queue[1:]
			n := copy(b, pkt.Payload)
			src := pkt.Src
			pc.host.n.releasePacket(pkt)
			return n, Addr{Net: "udp", AP: src}, nil
		}
		if pc.closed {
			return 0, nil, net.ErrClosed
		}
		if !pc.deadline.IsZero() && !pc.host.n.sched.Now().Before(pc.deadline) {
			return 0, nil, ErrTimeout
		}
		pc.cond.Wait()
	}
}

// WriteTo implements net.PacketConn.
func (pc *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return 0, net.ErrClosed
	}
	pc.mu.Unlock()

	ip, port, err := splitHostPort(addr.String())
	if err != nil {
		return 0, err
	}
	payload := make([]byte, len(b))
	copy(payload, b)
	pc.host.sendRaw(pc.host.n.NewPacket(Packet{
		Proto:   ProtoUDP,
		Src:     AddrPort{pc.host.ip, pc.port},
		Dst:     AddrPort{ip, port},
		Payload: payload,
		Wire:    len(payload) + udpHeaderSize,
	}))
	return len(b), nil
}

// Close implements net.PacketConn.
func (pc *PacketConn) Close() error {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return nil
	}
	pc.closed = true
	for i, pkt := range pc.queue {
		pc.host.n.releasePacket(pkt)
		pc.queue[i] = nil
	}
	pc.queue = nil
	pc.cond.Broadcast()
	pc.mu.Unlock()

	pc.host.mu.Lock()
	delete(pc.host.udpConns, pc.port)
	pc.host.mu.Unlock()
	return nil
}

// LocalAddr implements net.PacketConn.
func (pc *PacketConn) LocalAddr() net.Addr {
	return Addr{Net: "udp", AP: AddrPort{pc.host.ip, pc.port}}
}

// SetDeadline implements net.PacketConn.
func (pc *PacketConn) SetDeadline(t time.Time) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.deadline = t
	if pc.ddTimer != nil {
		pc.ddTimer.Stop()
		pc.ddTimer = nil
	}
	if !t.IsZero() {
		d := t.Sub(pc.host.n.sched.Now())
		pc.ddTimer = pc.host.n.sched.Event(d, func() {
			pc.mu.Lock()
			pc.cond.Broadcast()
			pc.mu.Unlock()
		})
	}
	return nil
}

// SetReadDeadline implements net.PacketConn.
func (pc *PacketConn) SetReadDeadline(t time.Time) error { return pc.SetDeadline(t) }

// SetWriteDeadline implements net.PacketConn. Writes never block, so the
// deadline is accepted and ignored.
func (pc *PacketConn) SetWriteDeadline(time.Time) error { return nil }

// udpConn adapts a PacketConn bound to one remote address to net.Conn,
// which is what Host.DialUDP returns.
type udpConn struct {
	pc     *PacketConn
	remote AddrPort
}

// DialUDP opens a connected UDP socket to address.
func (h *Host) DialUDP(address string) (net.Conn, error) {
	ip, port, err := splitHostPort(address)
	if err != nil {
		return nil, err
	}
	pc, err := h.ListenPacket(0)
	if err != nil {
		return nil, err
	}
	return &udpConn{pc: pc, remote: AddrPort{ip, port}}, nil
}

func (u *udpConn) Read(b []byte) (int, error) {
	for {
		n, addr, err := u.pc.ReadFrom(b)
		if err != nil {
			return 0, err
		}
		// Connected socket: discard datagrams from other sources.
		if addr.String() == u.remote.String() {
			return n, nil
		}
	}
}

func (u *udpConn) Write(b []byte) (int, error) {
	return u.pc.WriteTo(b, Addr{Net: "udp", AP: u.remote})
}

func (u *udpConn) Close() error                       { return u.pc.Close() }
func (u *udpConn) LocalAddr() net.Addr                { return u.pc.LocalAddr() }
func (u *udpConn) RemoteAddr() net.Addr               { return Addr{Net: "udp", AP: u.remote} }
func (u *udpConn) SetDeadline(t time.Time) error      { return u.pc.SetDeadline(t) }
func (u *udpConn) SetReadDeadline(t time.Time) error  { return u.pc.SetReadDeadline(t) }
func (u *udpConn) SetWriteDeadline(t time.Time) error { return u.pc.SetWriteDeadline(t) }
