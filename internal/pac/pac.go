// Package pac generates and evaluates proxy auto-config policies.
//
// ScholarCloud's entire client-side footprint is one browser setting: a
// PAC URL (§3 of the paper). The generated file diverts only the visible
// whitelist of incidentally-blocked legal domains to the domestic proxy;
// everything else goes DIRECT. The package also implements the matching
// semantics in Go (Evaluate), which is what the simulated browser and the
// domestic proxy use, and what the tests validate the generated
// JavaScript against.
package pac

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
)

// Decision is the routing outcome for a URL.
type Decision struct {
	// Proxy is false for DIRECT.
	Proxy bool
	// Address is the proxy "host:port" when Proxy is true.
	Address string
}

// String renders the decision in PAC syntax.
func (d Decision) String() string {
	if !d.Proxy {
		return "DIRECT"
	}
	return "PROXY " + d.Address
}

// Config is a PAC policy: route listed domains (and their subdomains)
// through the proxy, everything else direct.
type Config struct {
	mu        sync.RWMutex
	proxyAddr string
	domains   []string // sorted, lowercase
}

// New creates a policy routing domains through proxyAddr.
func New(proxyAddr string, domains []string) *Config {
	c := &Config{proxyAddr: proxyAddr}
	c.SetDomains(domains)
	return c
}

// SetDomains replaces the whitelist (the on-demand alteration the paper's
// registration regime requires).
func (c *Config) SetDomains(domains []string) {
	normalized := make([]string, 0, len(domains))
	for _, d := range domains {
		d = strings.ToLower(strings.TrimSuffix(strings.TrimSpace(d), "."))
		if d != "" {
			normalized = append(normalized, d)
		}
	}
	sort.Strings(normalized)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.domains = normalized
}

// Domains returns a copy of the whitelist — the "visible whitelist"
// government agencies can audit.
func (c *Config) Domains() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.domains...)
}

// ProxyAddr returns the proxy endpoint.
func (c *Config) ProxyAddr() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.proxyAddr
}

// Match reports whether host is covered by the whitelist (exact domain or
// subdomain, mirroring dnsDomainIs semantics). host may carry a ":port"
// suffix (proxy targets arrive as host:port) and a trailing dot; both are
// ignored, and matching is case-insensitive.
func (c *Config) Match(host string) bool {
	host = strings.ToLower(host)
	// Strip an optional port without mangling bare IPv6 literals ("::1"
	// has colons but no port): only net.SplitHostPort decides whether a
	// suffix is really a port, and on error the raw host stands.
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	// A bracketed IPv6 literal without a port ("[::1]") is unwrapped.
	if strings.HasPrefix(host, "[") && strings.HasSuffix(host, "]") {
		host = host[1 : len(host)-1]
	}
	host = strings.TrimSuffix(host, ".")
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, d := range c.domains {
		if host == d || strings.HasSuffix(host, "."+d) {
			return true
		}
	}
	return false
}

// Evaluate returns the routing decision for host, implementing the same
// logic as the generated FindProxyForURL.
func (c *Config) Evaluate(host string) Decision {
	if c.Match(host) {
		return Decision{Proxy: true, Address: c.ProxyAddr()}
	}
	return Decision{}
}

// JavaScript renders the policy as a PAC file for real browsers.
func (c *Config) JavaScript() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var b strings.Builder
	b.WriteString("// ScholarCloud proxy auto-config\n")
	b.WriteString("// Only the whitelisted, incidentally-blocked legal services below\n")
	b.WriteString("// are diverted through the proxy; all other traffic is DIRECT.\n")
	b.WriteString("function FindProxyForURL(url, host) {\n")
	for _, d := range c.domains {
		fmt.Fprintf(&b, "  if (dnsDomainIs(host, %q) || host == %q) return \"PROXY %s\";\n",
			"."+d, d, c.proxyAddr)
	}
	b.WriteString("  return \"DIRECT\";\n}\n")
	return b.String()
}
