// Package pac generates and evaluates proxy auto-config policies.
//
// ScholarCloud's entire client-side footprint is one browser setting: a
// PAC URL (§3 of the paper). The generated file diverts only the visible
// whitelist of incidentally-blocked legal domains to the domestic proxy;
// everything else goes DIRECT. The package also implements the matching
// semantics in Go (Evaluate), which is what the simulated browser and the
// domestic proxy use, and what the tests validate the generated
// JavaScript against.
//
// A policy may carry several proxy endpoints — the sharded domestic tier.
// Users are assigned to shards by rendezvous-hashing the client IP
// (shard.Score), and the generated JavaScript reproduces the assignment
// with myIpAddress() and the same JS-safe FNV-1a, so a real browser and
// the simulator route a given user to the same shard, with the remaining
// shards as browser-native "PROXY a; PROXY b" failover.
package pac

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"

	"scholarcloud/internal/shard"
)

// Decision is the routing outcome for a URL.
type Decision struct {
	// Proxy is false for DIRECT.
	Proxy bool
	// Address is the preferred proxy "host:port" when Proxy is true.
	Address string
	// Addresses is the full failover list in preference order (Address
	// first). Single-proxy policies carry a one-element list.
	Addresses []string
}

// String renders the decision in PAC syntax.
func (d Decision) String() string {
	if !d.Proxy {
		return "DIRECT"
	}
	if len(d.Addresses) > 1 {
		return "PROXY " + strings.Join(d.Addresses, "; PROXY ")
	}
	return "PROXY " + d.Address
}

// Config is a PAC policy: route listed domains (and their subdomains)
// through the proxy tier, everything else direct.
type Config struct {
	mu      sync.RWMutex
	proxies []string // shard endpoints, in configured order
	domains []string // sorted, lowercase
}

// New creates a policy routing domains through proxyAddr.
func New(proxyAddr string, domains []string) *Config {
	c := &Config{}
	if proxyAddr != "" {
		c.proxies = []string{proxyAddr}
	}
	c.SetDomains(domains)
	return c
}

// SetDomains replaces the whitelist (the on-demand alteration the paper's
// registration regime requires).
func (c *Config) SetDomains(domains []string) {
	normalized := make([]string, 0, len(domains))
	for _, d := range domains {
		d = strings.ToLower(strings.TrimSuffix(strings.TrimSpace(d), "."))
		if d != "" {
			normalized = append(normalized, d)
		}
	}
	sort.Strings(normalized)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.domains = normalized
}

// SetProxies replaces the proxy tier — the hook the shard Director uses
// to publish the live shard set after a takedown or recovery, so the next
// PAC download stops routing users to dead shards.
func (c *Config) SetProxies(proxies []string) {
	cleaned := make([]string, 0, len(proxies))
	for _, p := range proxies {
		if p = strings.TrimSpace(p); p != "" {
			cleaned = append(cleaned, p)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.proxies = cleaned
}

// Proxies returns a copy of the proxy tier in configured order.
func (c *Config) Proxies() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.proxies...)
}

// Domains returns a copy of the whitelist — the "visible whitelist"
// government agencies can audit.
func (c *Config) Domains() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.domains...)
}

// ProxyAddr returns the first proxy endpoint ("" when the tier is empty).
func (c *Config) ProxyAddr() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.proxies) == 0 {
		return ""
	}
	return c.proxies[0]
}

// Match reports whether host is covered by the whitelist (exact domain or
// subdomain, mirroring dnsDomainIs semantics). host may carry a ":port"
// suffix (proxy targets arrive as host:port) and a trailing dot; both are
// ignored, and matching is case-insensitive.
func (c *Config) Match(host string) bool {
	host = strings.ToLower(host)
	// Strip an optional port without mangling bare IPv6 literals ("::1"
	// has colons but no port): only net.SplitHostPort decides whether a
	// suffix is really a port, and on error the raw host stands.
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	// A bracketed IPv6 literal without a port ("[::1]") is unwrapped.
	if strings.HasPrefix(host, "[") && strings.HasSuffix(host, "]") {
		host = host[1 : len(host)-1]
	}
	host = strings.TrimSuffix(host, ".")
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, d := range c.domains {
		if host == d || strings.HasSuffix(host, "."+d) {
			return true
		}
	}
	return false
}

// Evaluate returns the routing decision for host with the proxy tier in
// configured order. Callers that know which client is asking should use
// EvaluateFor so sharded tiers hash the user onto its shard.
func (c *Config) Evaluate(host string) Decision {
	if !c.Match(host) {
		return Decision{}
	}
	addrs := c.Proxies()
	if len(addrs) == 0 {
		return Decision{}
	}
	return Decision{Proxy: true, Address: addrs[0], Addresses: addrs}
}

// EvaluateFor returns the routing decision for host as seen by the client
// at clientIP: proxies ordered by rendezvous preference for that user,
// exactly as the generated JavaScript orders them via myIpAddress(). With
// one proxy it degenerates to Evaluate.
func (c *Config) EvaluateFor(clientIP, host string) Decision {
	if !c.Match(host) {
		return Decision{}
	}
	addrs := c.Proxies()
	if len(addrs) == 0 {
		return Decision{}
	}
	sort.SliceStable(addrs, func(i, j int) bool {
		si, sj := shard.Score(clientIP, addrs[i]), shard.Score(clientIP, addrs[j])
		if si != sj {
			return si > sj
		}
		return addrs[i] < addrs[j]
	})
	return Decision{Proxy: true, Address: addrs[0], Addresses: addrs}
}

// JavaScript renders the policy as a PAC file for real browsers. A
// single-proxy policy renders the classic per-domain "PROXY addr" file; a
// sharded tier additionally embeds the JS-safe FNV-1a and rendezvous sort
// so the browser computes the same user→shard assignment as EvaluateFor.
func (c *Config) JavaScript() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var b strings.Builder
	b.WriteString("// ScholarCloud proxy auto-config\n")
	b.WriteString("// Only the whitelisted, incidentally-blocked legal services below\n")
	b.WriteString("// are diverted through the proxy; all other traffic is DIRECT.\n")
	b.WriteString("function FindProxyForURL(url, host) {\n")
	if len(c.proxies) > 1 {
		b.WriteString("  var shards = [")
		for i, p := range c.proxies {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q", p)
		}
		b.WriteString("];\n")
		// The hash must stay bit-identical to shard.Hash32: FNV-1a with
		// the prime decomposed into shift-adds because JS bitwise ops are
		// 32-bit while * would round through 53-bit floats.
		b.WriteString("  function h32(s) {\n")
		b.WriteString("    var h = 2166136261;\n")
		b.WriteString("    for (var i = 0; i < s.length; i++) {\n")
		b.WriteString("      h = h ^ s.charCodeAt(i);\n")
		b.WriteString("      h = (h + (h << 1) + (h << 4) + (h << 7) + (h << 8) + (h << 24)) >>> 0;\n")
		b.WriteString("    }\n")
		b.WriteString("    return h;\n")
		b.WriteString("  }\n")
		b.WriteString("  function route() {\n")
		b.WriteString("    var me = myIpAddress();\n")
		b.WriteString("    var order = shards.slice();\n")
		b.WriteString("    order.sort(function (a, b) {\n")
		b.WriteString("      var sa = h32(me + \"|\" + a), sb = h32(me + \"|\" + b);\n")
		b.WriteString("      if (sa != sb) return sb - sa;\n")
		b.WriteString("      return a < b ? -1 : 1;\n")
		b.WriteString("    });\n")
		b.WriteString("    var out = \"\";\n")
		b.WriteString("    for (var i = 0; i < order.length; i++) out += (i ? \"; \" : \"\") + \"PROXY \" + order[i];\n")
		b.WriteString("    return out;\n")
		b.WriteString("  }\n")
		for _, d := range c.domains {
			fmt.Fprintf(&b, "  if (dnsDomainIs(host, %q) || host == %q) return route();\n",
				"."+d, d)
		}
	} else {
		addr := ""
		if len(c.proxies) == 1 {
			addr = c.proxies[0]
		}
		for _, d := range c.domains {
			fmt.Fprintf(&b, "  if (dnsDomainIs(host, %q) || host == %q) return \"PROXY %s\";\n",
				"."+d, d, addr)
		}
	}
	b.WriteString("  return \"DIRECT\";\n}\n")
	return b.String()
}
