package pac

import (
	"strings"
	"testing"
)

func newTestConfig() *Config {
	return New("101.6.6.6:8118", []string{
		"scholar.google.com",
		"googleusercontent.com",
		"Accounts.Google.com.", // messy input: case + trailing dot
	})
}

func TestMatchExactAndSubdomains(t *testing.T) {
	c := newTestConfig()
	cases := []struct {
		host string
		want bool
	}{
		{"scholar.google.com", true},
		{"www.scholar.google.com", true},
		{"accounts.google.com", true},
		{"SCHOLAR.GOOGLE.COM", true},
		{"google.com", false}, // parent of a listed domain is NOT covered
		{"notscholar.google.com", false},
		{"baidu.com", false},
		{"evil-scholar.google.com.attacker.net", false},
	}
	for _, tc := range cases {
		if got := c.Match(tc.host); got != tc.want {
			t.Errorf("Match(%q) = %v, want %v", tc.host, got, tc.want)
		}
	}
}

func TestMatchHostPort(t *testing.T) {
	c := newTestConfig()
	cases := []struct {
		host string
		want bool
	}{
		{"scholar.google.com:443", true},
		{"scholar.google.com:80", true},
		{"www.scholar.google.com:8443", true},
		{"SCHOLAR.GOOGLE.COM:443", true},  // case-insensitive with port
		{"scholar.google.com.:443", true}, // FQDN trailing dot plus port
		{"baidu.com:443", false},
		{"google.com:443", false},
		{":443", false}, // degenerate: empty host
	}
	for _, tc := range cases {
		if got := c.Match(tc.host); got != tc.want {
			t.Errorf("Match(%q) = %v, want %v", tc.host, got, tc.want)
		}
	}
}

// TestMatchIPv6Literals guards the exported Match API against mangling
// bare IPv6 hosts: colons inside a v6 literal are not a port separator.
func TestMatchIPv6Literals(t *testing.T) {
	c := New("1.2.3.4:80", []string{"::1", "2001:db8::2", "scholar.google.com"})
	cases := []struct {
		host string
		want bool
	}{
		{"::1", true},           // bare literal: nothing stripped
		{"[::1]", true},         // bracketed, no port
		{"[::1]:443", true},     // bracketed with port
		{"2001:db8::2", true},   //
		{"[2001:DB8::2]", true}, // hex case-insensitive
		{"::2", false},
		{"[::2]:443", false},
		{"scholar.google.com:443", true}, // hostname stripping still works
	}
	for _, tc := range cases {
		if got := c.Match(tc.host); got != tc.want {
			t.Errorf("Match(%q) = %v, want %v", tc.host, got, tc.want)
		}
	}
}

func TestEmptyWhitelistHostPort(t *testing.T) {
	c := New("1.2.3.4:80", nil)
	for _, host := range []string{"scholar.google.com:443", "x:1", ":"} {
		if c.Match(host) {
			t.Errorf("empty whitelist matched %q", host)
		}
	}
}

func TestEvaluateDecisions(t *testing.T) {
	c := newTestConfig()
	if d := c.Evaluate("scholar.google.com"); !d.Proxy || d.Address != "101.6.6.6:8118" {
		t.Errorf("whitelisted decision = %+v", d)
	}
	if d := c.Evaluate("baidu.com"); d.Proxy {
		t.Errorf("non-whitelisted decision = %+v", d)
	}
	if s := c.Evaluate("baidu.com").String(); s != "DIRECT" {
		t.Errorf("decision string = %q", s)
	}
	if s := c.Evaluate("scholar.google.com").String(); s != "PROXY 101.6.6.6:8118" {
		t.Errorf("decision string = %q", s)
	}
}

func TestSetDomainsReplacesWhitelist(t *testing.T) {
	c := newTestConfig()
	c.SetDomains([]string{"archive.org"})
	if c.Match("scholar.google.com") {
		t.Error("old whitelist entry still matches after SetDomains")
	}
	if !c.Match("web.archive.org") {
		t.Error("new whitelist entry does not match")
	}
}

func TestDomainsIsAuditableCopy(t *testing.T) {
	c := newTestConfig()
	got := c.Domains()
	if len(got) != 3 {
		t.Fatalf("domains = %v", got)
	}
	got[0] = "tampered"
	if c.Domains()[0] == "tampered" {
		t.Error("Domains returned internal slice")
	}
}

func TestJavaScriptContainsWhitelistOnly(t *testing.T) {
	c := newTestConfig()
	js := c.JavaScript()
	if !strings.Contains(js, "function FindProxyForURL(url, host)") {
		t.Error("missing FindProxyForURL")
	}
	if !strings.Contains(js, `"PROXY 101.6.6.6:8118"`) {
		t.Error("missing proxy clause")
	}
	if !strings.Contains(js, "scholar.google.com") {
		t.Error("missing whitelisted domain")
	}
	if !strings.Contains(js, `return "DIRECT";`) {
		t.Error("missing DIRECT fallback")
	}
}

func TestEmptyWhitelistIsAllDirect(t *testing.T) {
	c := New("1.2.3.4:80", nil)
	if c.Match("anything.example") {
		t.Error("empty whitelist matched a host")
	}
	if d := c.Evaluate("anything.example"); d.Proxy {
		t.Error("empty whitelist proxied a host")
	}
}
