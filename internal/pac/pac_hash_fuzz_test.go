package pac

import (
	"strings"
	"testing"

	"scholarcloud/internal/shard"
)

// renderedH32Lines is the exact h32 body every multi-proxy PAC render
// must emit. jsHash32 in pac_shard_test.go is the line-by-line Go
// transliteration of these statements; the fuzz target below proves that
// transliteration agrees with shard.Hash32 on arbitrary inputs, and
// TestRenderedJSHashBodyIsCanonical pins the rendered text to it — so
// together they guard the full chain shard.Hash32 ↔ Go mirror ↔ shipped
// JavaScript that the autoscaler republishes on every scale event.
var renderedH32Lines = []string{
	"var h = 2166136261;",
	"h = h ^ s.charCodeAt(i);",
	"h = (h + (h << 1) + (h << 4) + (h << 7) + (h << 8) + (h << 24)) >>> 0;",
	"return h;",
}

func TestRenderedJSHashBodyIsCanonical(t *testing.T) {
	c := New("", []string{"scholar.google.com"})
	c.SetProxies(tierProxies)
	js := c.JavaScript()
	i := strings.Index(js, "function h32(s)")
	if i < 0 {
		t.Fatalf("rendered PAC has no h32 function:\n%s", js)
	}
	body := js[i:]
	pos := 0
	for _, line := range renderedH32Lines {
		j := strings.Index(body[pos:], line)
		if j < 0 {
			t.Fatalf("rendered h32 body missing (or reordered) %q:\n%s", line, body)
		}
		pos += j + len(line)
	}
}

// FuzzHash32MatchesRenderedJS fuzzes the browser-parity invariant: for
// any ASCII client IP and shard endpoint, shard.Hash32 over the
// rendezvous key must equal what the rendered h32 JavaScript computes
// (jsHash32 — charCodeAt, int32 ^ and <<, float64 +, >>> 0). Inputs with
// bytes outside ASCII are skipped: charCodeAt sees UTF-16 code units
// where Go sees bytes, and every string the PAC actually hashes (IP
// literals, host:port endpoints) is ASCII.
func FuzzHash32MatchesRenderedJS(f *testing.F) {
	f.Add("10.3.0.2", "101.6.6.10:8118")
	f.Add("2001:db8::2", "101.6.6.11:8118")
	f.Add("", "")
	f.Add("fe80::1%25en0", "proxy.example.com:8118")
	f.Add("255.255.255.255", "[2001:db8::5]:8118")
	f.Fuzz(func(t *testing.T, clientIP, endpoint string) {
		key := clientIP + "|" + endpoint
		for i := 0; i < len(key); i++ {
			if key[i] > 127 {
				t.Skip("non-ASCII input: charCodeAt and byte indexing diverge by design")
			}
		}
		if got, want := shard.Score(clientIP, endpoint), jsHash32(key); got != want {
			t.Fatalf("shard.Score(%q, %q) = %d, rendered JS computes %d", clientIP, endpoint, got, want)
		}
		if got, want := shard.Hash32(key), jsHash32(key); got != want {
			t.Fatalf("shard.Hash32(%q) = %d, rendered JS computes %d", key, got, want)
		}
	})
}
