package pac

import (
	"sort"
	"strings"
	"testing"
)

var tierProxies = []string{
	"101.6.6.10:8118", "101.6.6.11:8118", "101.6.6.12:8118", "101.6.6.13:8118",
}

// jsHash32 and jsAssign re-implement the generated PAC JavaScript's
// arithmetic in Go — charCodeAt, int32 ^ and <<, float64 +, >>> 0, and an
// Array.sort comparator over the float difference — so the tests prove a
// real browser evaluating the rendered file assigns users to the same
// shard as the simulator's EvaluateFor.
func jsHash32(s string) uint32 {
	var h int64 = 2166136261
	for i := 0; i < len(s); i++ {
		h = int64(int32(uint32(h)) ^ int32(s[i]))
		x := int32(uint32(h))
		sum := int64(x) + int64(x<<1) + int64(x<<4) + int64(x<<7) + int64(x<<8) + int64(x<<24)
		h = int64(uint32(sum))
	}
	return uint32(h)
}

func jsAssign(clientIP string, proxies []string) []string {
	order := append([]string(nil), proxies...)
	sort.SliceStable(order, func(i, j int) bool {
		sa := jsHash32(clientIP + "|" + order[i])
		sb := jsHash32(clientIP + "|" + order[j])
		if sa != sb {
			// JS comparator: return sb - sa (float, exact for uint32).
			return sa > sb
		}
		return order[i] < order[j]
	})
	return order
}

func TestEvaluateForAgreesWithRenderedPAC(t *testing.T) {
	c := New("", []string{"scholar.google.com", "accounts.google.com"})
	c.SetProxies(tierProxies)
	clients := []string{
		"10.3.0.2", "10.3.1.7", "10.3.199.200", "192.168.1.1",
		"2001:db8::2", "fe80::1", "2607:f8b0:4005:805::200e",
	}
	hosts := []string{
		"scholar.google.com",
		"scholar.google.com:443",
		"www.scholar.google.com.",
		"ACCOUNTS.GOOGLE.COM",
	}
	for _, ip := range clients {
		want := jsAssign(ip, tierProxies)
		for _, h := range hosts {
			d := c.EvaluateFor(ip, h)
			if !d.Proxy {
				t.Fatalf("EvaluateFor(%q, %q) went DIRECT", ip, h)
			}
			if strings.Join(d.Addresses, ";") != strings.Join(want, ";") {
				t.Errorf("EvaluateFor(%q, %q) = %v, JS mirror assigns %v", ip, h, d.Addresses, want)
			}
			if d.Address != want[0] {
				t.Errorf("EvaluateFor(%q, %q).Address = %s, want %s", ip, h, d.Address, want[0])
			}
		}
	}
}

func TestEvaluateForNonWhitelistedStaysDirect(t *testing.T) {
	c := New("", []string{"scholar.google.com"})
	c.SetProxies(tierProxies)
	for _, h := range []string{
		"www.google.com", "[2001:db8::1]:443", "::1", "10.0.0.1:80",
		"notscholar.google.com.evil.example",
	} {
		if d := c.EvaluateFor("10.3.0.2", h); d.Proxy {
			t.Errorf("EvaluateFor(%q) = %v, want DIRECT", h, d)
		}
		if c.Match(h) {
			t.Errorf("Match(%q) = true, want false", h)
		}
	}
}

func TestEvaluateForBracketedAndPortedHostsMatchBareForm(t *testing.T) {
	// Whatever syntactic dress the host arrives in — ports, brackets,
	// trailing dots — the routing decision must be the one the bare
	// domain gets, for every client.
	c := New("", []string{"scholar.google.com"})
	c.SetProxies(tierProxies)
	for _, ip := range []string{"10.3.0.2", "2001:db8::2"} {
		bare := c.EvaluateFor(ip, "scholar.google.com")
		for _, h := range []string{
			"scholar.google.com:8443", "scholar.google.com.", "Scholar.Google.Com:80",
		} {
			if got := c.EvaluateFor(ip, h); got.String() != bare.String() {
				t.Errorf("EvaluateFor(%q, %q) = %q, bare form gives %q", ip, h, got, bare)
			}
		}
	}
}

func TestEvaluateForSingleProxyDegenerates(t *testing.T) {
	c := New("101.6.6.6:8118", []string{"scholar.google.com"})
	for _, ip := range []string{"10.3.0.2", "2001:db8::2", ""} {
		d := c.EvaluateFor(ip, "scholar.google.com")
		if !d.Proxy || d.Address != "101.6.6.6:8118" || len(d.Addresses) != 1 {
			t.Fatalf("EvaluateFor(%q) = %+v, want the lone proxy", ip, d)
		}
		if d.String() != "PROXY 101.6.6.6:8118" {
			t.Errorf("String() = %q", d.String())
		}
	}
}

func TestDecisionStringRendersFailoverChain(t *testing.T) {
	d := Decision{Proxy: true, Address: "a:1", Addresses: []string{"a:1", "b:2", "c:3"}}
	if got, want := d.String(), "PROXY a:1; PROXY b:2; PROXY c:3"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSetProxiesReordersTier(t *testing.T) {
	c := New("101.6.6.6:8118", []string{"scholar.google.com"})
	if got := c.Proxies(); len(got) != 1 || got[0] != "101.6.6.6:8118" {
		t.Fatalf("Proxies() = %v", got)
	}
	c.SetProxies([]string{"101.6.6.10:8118", "", " 101.6.6.11:8118 "})
	got := c.Proxies()
	if len(got) != 2 || got[0] != "101.6.6.10:8118" || got[1] != "101.6.6.11:8118" {
		t.Fatalf("Proxies() after SetProxies = %v", got)
	}
	if c.ProxyAddr() != "101.6.6.10:8118" {
		t.Errorf("ProxyAddr() = %q", c.ProxyAddr())
	}
}

func TestMultiProxyJavaScriptEmbedsTierAndHash(t *testing.T) {
	c := New("", []string{"scholar.google.com"})
	c.SetProxies(tierProxies)
	js := c.JavaScript()
	for _, want := range []string{
		`var shards = ["101.6.6.10:8118", "101.6.6.11:8118", "101.6.6.12:8118", "101.6.6.13:8118"];`,
		"function h32(s)",
		"h = (h + (h << 1) + (h << 4) + (h << 7) + (h << 8) + (h << 24)) >>> 0;",
		"var me = myIpAddress();",
		`if (dnsDomainIs(host, ".scholar.google.com") || host == "scholar.google.com") return route();`,
		`return "DIRECT";`,
	} {
		if !strings.Contains(js, want) {
			t.Errorf("multi-proxy JavaScript missing %q:\n%s", want, js)
		}
	}
	if strings.Contains(js, "PROXY 101.6.6.10:8118\";") {
		t.Error("multi-proxy JavaScript must route via the hash, not a fixed PROXY literal")
	}
}

func TestSingleProxyJavaScriptHasNoShardMachinery(t *testing.T) {
	c := New("101.6.6.6:8118", []string{"scholar.google.com"})
	js := c.JavaScript()
	for _, banned := range []string{"var shards", "h32", "myIpAddress"} {
		if strings.Contains(js, banned) {
			t.Errorf("single-proxy JavaScript unexpectedly contains %q:\n%s", banned, js)
		}
	}
	if !strings.Contains(js, `return "PROXY 101.6.6.6:8118";`) {
		t.Errorf("single-proxy JavaScript lost the classic render:\n%s", js)
	}
}
