package scholarcloud

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"scholarcloud/internal/httpsim"
)

// startOrigin runs a plain-HTTP origin on a loopback socket and returns
// its host:port.
func startOrigin(t *testing.T, body string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					if _, err := httpsim.ReadRequest(br); err != nil {
						return
					}
					resp := httpsim.NewResponse(200, []byte(body))
					if err := resp.Encode(conn); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestRealSocketDeployment runs the full split-proxy system over loopback
// sockets: browser-side CONNECT through the domestic proxy, blinded
// tunnel to the remote proxy, remote dial to an origin.
func TestRealSocketDeployment(t *testing.T) {
	origin := startOrigin(t, "legal scholarly content")
	originHost, originPort, _ := strings.Cut(origin, ":")

	secret := []byte("deployment-secret")
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{originHost},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	// Browser-side: CONNECT to the origin through the domestic proxy.
	conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "CONNECT %s HTTP/1.1\r\nHost: %s\r\n\r\n", origin, origin)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("CONNECT status = %q", status)
	}
	// Drain the rest of the response head.
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
	}

	// Speak HTTP through the tunnel.
	fmt.Fprintf(conn, "GET /paper HTTP/1.1\r\nHost: %s:%s\r\n\r\n", originHost, originPort)
	resp, err := httpsim.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "legal scholarly content" {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestRealSocketWhitelistRefusal(t *testing.T) {
	secret := []byte("deployment-secret")
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{"scholar.google.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "CONNECT evil.example:443 HTTP/1.1\r\nHost: evil.example:443\r\n\r\n")
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "403") {
		t.Errorf("status = %q, want 403", status)
	}
}

func TestRealSocketPACEndpoint(t *testing.T) {
	secret := []byte("s")
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen:     "127.0.0.1:0",
		WebListen:       "127.0.0.1:0",
		RemoteAddr:      remote.Addr().String(),
		Secret:          secret,
		Whitelist:       []string{"scholar.google.com"},
		PublicProxyAddr: "proxy.thucloud.example:8118",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	conn, err := net.DialTimeout("tcp", domestic.WebAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /pac HTTP/1.1\r\nHost: x\r\n\r\n")
	resp, err := httpsim.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "FindProxyForURL") ||
		!strings.Contains(body, "proxy.thucloud.example:8118") {
		t.Errorf("PAC = %q", body)
	}
}

func TestRealSocketWrongSecretFailsClosed(t *testing.T) {
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: []byte("right")})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      []byte("wrong"),
		Whitelist:   []string{"scholar.google.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, "CONNECT scholar.google.com:443 HTTP/1.1\r\nHost: scholar.google.com:443\r\n\r\n")
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && err != io.EOF {
		return // connection dropped: acceptable fail-closed behaviour
	}
	if err == nil && !strings.Contains(status, "502") {
		t.Errorf("status = %q, want 502 or connection drop", status)
	}
}

// TestRealSocketAdminEndpoints deploys both proxies with admin listeners
// and checks that /healthz answers and /metrics reflects proxied traffic.
func TestRealSocketAdminEndpoints(t *testing.T) {
	origin := startOrigin(t, "measured content")
	originHost, _, _ := strings.Cut(origin, ":")
	secret := []byte("admin-secret")

	remote, err := StartRemote(RemoteConfig{
		Listen:      "127.0.0.1:0",
		AdminListen: "127.0.0.1:0",
		Secret:      secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		AdminListen: "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{originHost},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	adminGet := func(addr net.Addr, path string) (*httpsim.Response, error) {
		conn, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: admin\r\n\r\n", path)
		return httpsim.ReadResponse(bufio.NewReader(conn))
	}

	for _, addr := range []net.Addr{remote.AdminAddr(), domestic.AdminAddr()} {
		if addr == nil {
			t.Fatal("AdminAddr() = nil with AdminListen configured")
		}
		resp, err := adminGet(addr, "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "ok") {
			t.Errorf("healthz on %s = %d %q", addr, resp.StatusCode, resp.Body)
		}
	}

	// One proxied CONNECT, then the counters must show it.
	conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "CONNECT %s HTTP/1.1\r\nHost: %s\r\n\r\n", origin, origin)
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("CONNECT status = %q", status)
	}
	conn.Close()

	resp, err := adminGet(domestic.AdminAddr(), "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "core.domestic.requests=1") {
		t.Errorf("domestic /metrics missing request count:\n%s", body)
	}
	if !strings.Contains(body, "fleet.picks=1") {
		t.Errorf("domestic /metrics missing fleet pick:\n%s", body)
	}
	resp, err = adminGet(remote.AdminAddr(), "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "core.remote.streams_opened=1") {
		t.Errorf("remote /metrics missing stream count:\n%s", resp.Body)
	}
}

// freePort reserves a loopback port by binding and immediately closing
// it, returning the address for a later bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// blockPort binds a listener whose only job is to make a later bind of
// the same address fail.
func blockPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestStartRemotePartialFailureCleansUp forces startAdmin to fail (its
// port is already taken) and checks StartRemote released the tunnel
// listener it had already bound: the port must be immediately
// rebindable.
func TestStartRemotePartialFailureCleansUp(t *testing.T) {
	listen := freePort(t)
	_, err := StartRemote(RemoteConfig{
		Listen:      listen,
		AdminListen: blockPort(t),
		Secret:      []byte("s"),
	})
	if err == nil {
		t.Fatal("StartRemote succeeded with its admin port taken")
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		t.Fatalf("tunnel port not released after failed start: %v", err)
	}
	ln.Close()
}

// TestStartDomesticPartialFailureCleansUp forces the same failure on the
// domestic side and checks the whole partial stack came down: both
// already-bound listeners are rebindable and the fleet's pre-dialed
// carrier connections to the (stub) remote are closed.
func TestStartDomesticPartialFailureCleansUp(t *testing.T) {
	// Stub remote: accept carriers and hold them so we can observe the
	// client side closing them.
	remoteLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer remoteLn.Close()
	accepted := make(chan net.Conn, 16)
	go func() {
		for {
			c, err := remoteLn.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	proxyListen, webListen := freePort(t), freePort(t)
	_, err = StartDomestic(DomesticConfig{
		ProxyListen: proxyListen,
		WebListen:   webListen,
		AdminListen: blockPort(t),
		RemoteAddr:  remoteLn.Addr().String(),
		Secret:      []byte("s"),
		Whitelist:   []string{"scholar.google.com"},
	})
	if err == nil {
		t.Fatal("StartDomestic succeeded with its admin port taken")
	}

	for _, addr := range []string{proxyListen, webListen} {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("port %s not released after failed start: %v", addr, err)
		}
		ln.Close()
	}

	// Every carrier the stub accepted must be closed by the pool's
	// teardown: reads end in EOF rather than hanging.
	for {
		select {
		case c := <-accepted:
			c.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := c.Read(make([]byte, 1)); err != io.EOF {
				t.Errorf("carrier conn still open after failed start: read err = %v", err)
			}
			c.Close()
		default:
			return
		}
	}
}

func TestRealSocketCoordinatedRotation(t *testing.T) {
	origin := startOrigin(t, "post-rotation content")
	originHost, _, _ := strings.Cut(origin, ":")
	secret := []byte("rotating-secret")

	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{originHost},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	connectOnce := func() error {
		conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
		if err != nil {
			return err
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		fmt.Fprintf(conn, "CONNECT %s HTTP/1.1\r\nHost: %s\r\n\r\n", origin, origin)
		status, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			return err
		}
		if !strings.Contains(status, "200") {
			return fmt.Errorf("status %q", status)
		}
		return nil
	}
	if err := connectOnce(); err != nil {
		t.Fatalf("epoch 0: %v", err)
	}
	// Coordinated rotation: both ends move to epoch 1.
	remote.remote.SetEpoch(1)
	domestic.Rotate(1)
	if err := connectOnce(); err != nil {
		t.Fatalf("epoch 1: %v", err)
	}
}

// TestRealSocketTransportLadder runs the domestic proxy with a carrier
// escalation ladder instead of a fixed remote: a single blinded rung
// pointing at the real-socket remote proxy. Page loads flow through the
// transport-labeled fleet endpoint and the ladder reports its rung.
func TestRealSocketTransportLadder(t *testing.T) {
	origin := startOrigin(t, "ladder-carried content")
	originHost, originPort, _ := strings.Cut(origin, ":")

	secret := []byte("deployment-secret")
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		Transports:  []string{"blinded=" + remote.Addr().String()},
		Secret:      secret,
		Whitelist:   []string{originHost},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	if got := domestic.ActiveTransport(); got != "blinded" {
		t.Fatalf("ActiveTransport = %q, want %q", got, "blinded")
	}

	conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "CONNECT %s HTTP/1.1\r\nHost: %s\r\n\r\n", origin, origin)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("CONNECT status = %q", status)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
	}
	fmt.Fprintf(conn, "GET /paper HTTP/1.1\r\nHost: %s:%s\r\n\r\n", originHost, originPort)
	resp, err := httpsim.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "ladder-carried content" {
		t.Errorf("body = %q", resp.Body)
	}
}

// TestStartDomesticTransportValidation checks the Transports entry
// parser and its interaction with the legacy remote fields.
func TestStartDomesticTransportValidation(t *testing.T) {
	secret := []byte("s")
	base := func() DomesticConfig {
		return DomesticConfig{
			ProxyListen: "127.0.0.1:0",
			WebListen:   "127.0.0.1:0",
			Secret:      secret,
		}
	}
	cases := []struct {
		name string
		mut  func(*DomesticConfig)
		want string
	}{
		{"neither", func(*DomesticConfig) {}, "needs RemoteAddr"},
		{"both", func(c *DomesticConfig) {
			c.RemoteAddr = "127.0.0.1:1"
			c.Transports = []string{"blinded=127.0.0.1:1"}
		}, "mutually exclusive"},
		{"malformed", func(c *DomesticConfig) {
			c.Transports = []string{"blinded"}
		}, `want "name=host:port"`},
		{"unknown", func(c *DomesticConfig) {
			c.Transports = []string{"warp-drive=127.0.0.1:1"}
		}, "unknown transport"},
		{"duplicate", func(c *DomesticConfig) {
			c.Transports = []string{"blinded=127.0.0.1:1", "blinded=127.0.0.1:2"}
		}, "duplicate transport"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			d, err := StartDomestic(cfg)
			if err == nil {
				d.Close()
				t.Fatalf("StartDomestic accepted %+v", cfg.Transports)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
