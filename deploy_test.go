package scholarcloud

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scholarcloud/internal/autoscale"
	"scholarcloud/internal/httpsim"
)

// startOrigin runs a plain-HTTP origin on a loopback socket and returns
// its host:port.
func startOrigin(t *testing.T, body string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					if _, err := httpsim.ReadRequest(br); err != nil {
						return
					}
					resp := httpsim.NewResponse(200, []byte(body))
					if err := resp.Encode(conn); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestRealSocketDeployment runs the full split-proxy system over loopback
// sockets: browser-side CONNECT through the domestic proxy, blinded
// tunnel to the remote proxy, remote dial to an origin.
func TestRealSocketDeployment(t *testing.T) {
	origin := startOrigin(t, "legal scholarly content")
	originHost, originPort, _ := strings.Cut(origin, ":")

	secret := []byte("deployment-secret")
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{originHost},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	// Browser-side: CONNECT to the origin through the domestic proxy.
	conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "CONNECT %s HTTP/1.1\r\nHost: %s\r\n\r\n", origin, origin)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("CONNECT status = %q", status)
	}
	// Drain the rest of the response head.
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
	}

	// Speak HTTP through the tunnel.
	fmt.Fprintf(conn, "GET /paper HTTP/1.1\r\nHost: %s:%s\r\n\r\n", originHost, originPort)
	resp, err := httpsim.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "legal scholarly content" {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestRealSocketWhitelistRefusal(t *testing.T) {
	secret := []byte("deployment-secret")
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{"scholar.google.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "CONNECT evil.example:443 HTTP/1.1\r\nHost: evil.example:443\r\n\r\n")
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "403") {
		t.Errorf("status = %q, want 403", status)
	}
}

func TestRealSocketPACEndpoint(t *testing.T) {
	secret := []byte("s")
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen:     "127.0.0.1:0",
		WebListen:       "127.0.0.1:0",
		RemoteAddr:      remote.Addr().String(),
		Secret:          secret,
		Whitelist:       []string{"scholar.google.com"},
		PublicProxyAddr: "proxy.thucloud.example:8118",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	conn, err := net.DialTimeout("tcp", domestic.WebAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /pac HTTP/1.1\r\nHost: x\r\n\r\n")
	resp, err := httpsim.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "FindProxyForURL") ||
		!strings.Contains(body, "proxy.thucloud.example:8118") {
		t.Errorf("PAC = %q", body)
	}
}

func TestRealSocketWrongSecretFailsClosed(t *testing.T) {
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: []byte("right")})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      []byte("wrong"),
		Whitelist:   []string{"scholar.google.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, "CONNECT scholar.google.com:443 HTTP/1.1\r\nHost: scholar.google.com:443\r\n\r\n")
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && err != io.EOF {
		return // connection dropped: acceptable fail-closed behaviour
	}
	if err == nil && !strings.Contains(status, "502") {
		t.Errorf("status = %q, want 502 or connection drop", status)
	}
}

// TestRealSocketAdminEndpoints deploys both proxies with admin listeners
// and checks that /healthz answers and /metrics reflects proxied traffic.
func TestRealSocketAdminEndpoints(t *testing.T) {
	origin := startOrigin(t, "measured content")
	originHost, _, _ := strings.Cut(origin, ":")
	secret := []byte("admin-secret")

	remote, err := StartRemote(RemoteConfig{
		Listen:      "127.0.0.1:0",
		AdminListen: "127.0.0.1:0",
		Secret:      secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		AdminListen: "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{originHost},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	adminGet := func(addr net.Addr, path string) (*httpsim.Response, error) {
		conn, err := net.DialTimeout("tcp", addr.String(), 5*time.Second)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: admin\r\n\r\n", path)
		return httpsim.ReadResponse(bufio.NewReader(conn))
	}

	for _, addr := range []net.Addr{remote.AdminAddr(), domestic.AdminAddr()} {
		if addr == nil {
			t.Fatal("AdminAddr() = nil with AdminListen configured")
		}
		resp, err := adminGet(addr, "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "ok") {
			t.Errorf("healthz on %s = %d %q", addr, resp.StatusCode, resp.Body)
		}
	}

	// One proxied CONNECT, then the counters must show it.
	conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "CONNECT %s HTTP/1.1\r\nHost: %s\r\n\r\n", origin, origin)
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("CONNECT status = %q", status)
	}
	conn.Close()

	resp, err := adminGet(domestic.AdminAddr(), "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "core.domestic.requests=1") {
		t.Errorf("domestic /metrics missing request count:\n%s", body)
	}
	if !strings.Contains(body, "fleet.picks=1") {
		t.Errorf("domestic /metrics missing fleet pick:\n%s", body)
	}
	resp, err = adminGet(remote.AdminAddr(), "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(resp.Body), "core.remote.streams_opened=1") {
		t.Errorf("remote /metrics missing stream count:\n%s", resp.Body)
	}
}

// freePort reserves a loopback port by binding and immediately closing
// it, returning the address for a later bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// blockPort binds a listener whose only job is to make a later bind of
// the same address fail.
func blockPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestStartRemotePartialFailureCleansUp forces startAdmin to fail (its
// port is already taken) and checks StartRemote released the tunnel
// listener it had already bound: the port must be immediately
// rebindable.
func TestStartRemotePartialFailureCleansUp(t *testing.T) {
	listen := freePort(t)
	_, err := StartRemote(RemoteConfig{
		Listen:      listen,
		AdminListen: blockPort(t),
		Secret:      []byte("s"),
	})
	if err == nil {
		t.Fatal("StartRemote succeeded with its admin port taken")
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		t.Fatalf("tunnel port not released after failed start: %v", err)
	}
	ln.Close()
}

// TestStartDomesticPartialFailureCleansUp forces the same failure on the
// domestic side and checks the whole partial stack came down: both
// already-bound listeners are rebindable and the fleet's pre-dialed
// carrier connections to the (stub) remote are closed.
func TestStartDomesticPartialFailureCleansUp(t *testing.T) {
	// Stub remote: accept carriers and hold them so we can observe the
	// client side closing them.
	remoteLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer remoteLn.Close()
	accepted := make(chan net.Conn, 16)
	go func() {
		for {
			c, err := remoteLn.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()

	proxyListen, webListen := freePort(t), freePort(t)
	_, err = StartDomestic(DomesticConfig{
		ProxyListen: proxyListen,
		WebListen:   webListen,
		AdminListen: blockPort(t),
		RemoteAddr:  remoteLn.Addr().String(),
		Secret:      []byte("s"),
		Whitelist:   []string{"scholar.google.com"},
	})
	if err == nil {
		t.Fatal("StartDomestic succeeded with its admin port taken")
	}

	for _, addr := range []string{proxyListen, webListen} {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("port %s not released after failed start: %v", addr, err)
		}
		ln.Close()
	}

	// Every carrier the stub accepted must be closed by the pool's
	// teardown: reads end in EOF rather than hanging.
	for {
		select {
		case c := <-accepted:
			c.SetReadDeadline(time.Now().Add(5 * time.Second))
			if _, err := c.Read(make([]byte, 1)); err != io.EOF {
				t.Errorf("carrier conn still open after failed start: read err = %v", err)
			}
			c.Close()
		default:
			return
		}
	}
}

func TestRealSocketCoordinatedRotation(t *testing.T) {
	origin := startOrigin(t, "post-rotation content")
	originHost, _, _ := strings.Cut(origin, ":")
	secret := []byte("rotating-secret")

	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{originHost},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	connectOnce := func() error {
		conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
		if err != nil {
			return err
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		fmt.Fprintf(conn, "CONNECT %s HTTP/1.1\r\nHost: %s\r\n\r\n", origin, origin)
		status, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			return err
		}
		if !strings.Contains(status, "200") {
			return fmt.Errorf("status %q", status)
		}
		return nil
	}
	if err := connectOnce(); err != nil {
		t.Fatalf("epoch 0: %v", err)
	}
	// Coordinated rotation: both ends move to epoch 1.
	remote.remote.SetEpoch(1)
	domestic.Rotate(1)
	if err := connectOnce(); err != nil {
		t.Fatalf("epoch 1: %v", err)
	}
}

// TestRealSocketTransportLadder runs the domestic proxy with a carrier
// escalation ladder instead of a fixed remote: a single blinded rung
// pointing at the real-socket remote proxy. Page loads flow through the
// transport-labeled fleet endpoint and the ladder reports its rung.
func TestRealSocketTransportLadder(t *testing.T) {
	origin := startOrigin(t, "ladder-carried content")
	originHost, originPort, _ := strings.Cut(origin, ":")

	secret := []byte("deployment-secret")
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		Transports:  []string{"blinded=" + remote.Addr().String()},
		Secret:      secret,
		Whitelist:   []string{originHost},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	if got := domestic.ActiveTransport(); got != "blinded" {
		t.Fatalf("ActiveTransport = %q, want %q", got, "blinded")
	}

	conn, err := net.DialTimeout("tcp", domestic.ProxyAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "CONNECT %s HTTP/1.1\r\nHost: %s\r\n\r\n", origin, origin)
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("CONNECT status = %q", status)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break
		}
	}
	fmt.Fprintf(conn, "GET /paper HTTP/1.1\r\nHost: %s:%s\r\n\r\n", originHost, originPort)
	resp, err := httpsim.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "ladder-carried content" {
		t.Errorf("body = %q", resp.Body)
	}
}

// TestStartDomesticTransportValidation checks the Transports entry
// parser and its interaction with the legacy remote fields.
func TestStartDomesticTransportValidation(t *testing.T) {
	secret := []byte("s")
	base := func() DomesticConfig {
		return DomesticConfig{
			ProxyListen: "127.0.0.1:0",
			WebListen:   "127.0.0.1:0",
			Secret:      secret,
		}
	}
	cases := []struct {
		name string
		mut  func(*DomesticConfig)
		want string
	}{
		{"neither", func(*DomesticConfig) {}, "needs RemoteAddr"},
		{"both", func(c *DomesticConfig) {
			c.RemoteAddr = "127.0.0.1:1"
			c.Transports = []string{"blinded=127.0.0.1:1"}
		}, "mutually exclusive"},
		{"malformed", func(c *DomesticConfig) {
			c.Transports = []string{"blinded"}
		}, `want "name=host:port"`},
		{"unknown", func(c *DomesticConfig) {
			c.Transports = []string{"warp-drive=127.0.0.1:1"}
		}, "unknown transport"},
		{"duplicate", func(c *DomesticConfig) {
			c.Transports = []string{"blinded=127.0.0.1:1", "blinded=127.0.0.1:2"}
		}, "duplicate transport"},
		{"censor-unknown", func(c *DomesticConfig) {
			c.Transports = []string{"blinded=127.0.0.1:1"}
			c.CensorProfile = "panopticon"
		}, "unknown censor profile"},
		{"censor-needs-ladder", func(c *DomesticConfig) {
			c.RemoteAddr = "127.0.0.1:1"
			c.CensorProfile = "adaptive"
		}, "CensorProfile requires Transports"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			d, err := StartDomestic(cfg)
			if err == nil {
				d.Close()
				t.Fatalf("StartDomestic accepted %+v", cfg.Transports)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestRealSocketCensorProfile deploys the survival-tuned ladder: a
// CensorProfile rides on Transports and the proxy comes up on the
// ladder's first rung with the censor package's tuning applied.
func TestRealSocketCensorProfile(t *testing.T) {
	secret := []byte("deployment-secret")
	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	domestic, err := StartDomestic(DomesticConfig{
		ProxyListen:   "127.0.0.1:0",
		WebListen:     "127.0.0.1:0",
		Transports:    []string{"blinded=" + remote.Addr().String()},
		CensorProfile: "adaptive",
		Resilience:    true,
		Secret:        secret,
		Whitelist:     []string{"scholar.google.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer domestic.Close()

	if got := domestic.ActiveTransport(); got != "blinded" {
		t.Fatalf("ActiveTransport = %q, want %q", got, "blinded")
	}
}

// startCountingOrigin is startOrigin plus a hit counter, so shard tests
// can assert how many fetches actually crossed to the origin.
func startCountingOrigin(t *testing.T, body string) (addr string, hits func() int64) {
	t.Helper()
	var n int64
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					if _, err := httpsim.ReadRequest(br); err != nil {
						return
					}
					atomic.AddInt64(&n, 1)
					resp := httpsim.NewResponse(200, []byte(body))
					if err := resp.Encode(conn); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() int64 { return atomic.LoadInt64(&n) }
}

// proxyGet issues an absolute-URI GET through the proxy at proxyAddr,
// the plain-HTTP proxying path shard caches key on.
func proxyGet(t *testing.T, proxyAddr, target string) *httpsim.Response {
	t.Helper()
	conn, err := net.DialTimeout("tcp", proxyAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	u, err := httpsim.ParseURL(target)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\n\r\n", target, u.Host)
	resp, err := httpsim.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("GET %s via %s: %v", target, proxyAddr, err)
	}
	return resp
}

// TestRealSocketShardedTier runs a three-shard domestic tier over
// loopback sockets and checks the tentpole's deployment-side guarantees:
// the PAC embeds the whole tier with the rendezvous assignment, every
// shard serves the shared object, and the object crosses to the origin
// exactly once however many shards are asked.
func TestRealSocketShardedTier(t *testing.T) {
	origin, originHits := startCountingOrigin(t, "tier-cached content")
	originHost, _, _ := strings.Cut(origin, ":")
	secret := []byte("tier-secret")

	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	tier, err := StartDomesticTier(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		AdminListen: "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{originHost},
		CacheMB:     4,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	addrs := tier.Addrs()
	if len(addrs) != 3 {
		t.Fatalf("tier addrs = %v, want 3", addrs)
	}
	pacFile := tier.PAC()
	for _, a := range addrs {
		if !strings.Contains(pacFile, a) {
			t.Errorf("PAC does not list shard %s:\n%s", a, pacFile)
		}
	}
	if !strings.Contains(pacFile, "myIpAddress()") {
		t.Errorf("sharded PAC lacks the rendezvous assignment:\n%s", pacFile)
	}

	target := "http://" + origin + "/paper"
	for i, d := range tier.Shards() {
		resp := proxyGet(t, d.ProxyAddr().String(), target)
		if resp.StatusCode != 200 || string(resp.Body) != "tier-cached content" {
			t.Fatalf("shard %d: %d %q", i, resp.StatusCode, resp.Body)
		}
	}
	if got := originHits(); got != 1 {
		t.Errorf("origin fetched %d times by a 3-shard tier, want exactly 1", got)
	}
	var siblings, borders int64
	for _, d := range tier.Shards() {
		st := d.domestic.Cache.Snapshot()
		siblings += st.SiblingFetches
		borders += st.BorderFetches
	}
	if borders != 1 {
		t.Errorf("tier border fetches = %d, want 1", borders)
	}
	if siblings != 2 {
		t.Errorf("tier sibling fetches = %d, want 2 (one per non-owner)", siblings)
	}
}

// TestRealSocketShardedTierTakedown seizes one shard of a running tier
// and checks the coordinated response on every survivor: PAC republish,
// ring rehash, and continued service.
func TestRealSocketShardedTierTakedown(t *testing.T) {
	origin, _ := startCountingOrigin(t, "survivor content")
	originHost, _, _ := strings.Cut(origin, ":")
	secret := []byte("tier-secret")

	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	tier, err := StartDomesticTier(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{originHost},
		CacheMB:     4,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	addrs := tier.Addrs()
	victim := addrs[2]
	tier.MarkDown(victim)
	for i, d := range tier.Shards() {
		if strings.Contains(d.PAC(), victim) {
			t.Errorf("shard %d's PAC still lists the seized shard %s", i, victim)
		}
		if got := d.ShardAddrs(); len(got) != 2 {
			t.Errorf("shard %d publishes %v, want the 2 survivors", i, got)
		}
	}

	// Survivors keep serving, including keys the victim owned.
	target := "http://" + origin + "/cite/42"
	resp := proxyGet(t, tier.Shards()[0].ProxyAddr().String(), target)
	if resp.StatusCode != 200 || string(resp.Body) != "survivor content" {
		t.Fatalf("post-takedown fetch: %d %q", resp.StatusCode, resp.Body)
	}

	tier.MarkUp(victim)
	if got := tier.Shards()[0].ShardAddrs(); len(got) != 3 {
		t.Errorf("after MarkUp the tier publishes %v, want all 3", got)
	}
}

// TestRealSocketShardAddrsPeering is the multi-process tier: two
// StartDomestic calls (one per shard, as separate machines would run),
// each configured with the full tier in ShardAddrs. A shared object
// fetched through both shards crosses to the origin once.
func TestRealSocketShardAddrsPeering(t *testing.T) {
	origin, originHits := startCountingOrigin(t, "peered content")
	originHost, _, _ := strings.Cut(origin, ":")
	secret := []byte("peer-secret")

	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	tierAddrs := []string{freePort(t), freePort(t)}
	var shards []*DomesticProxy
	for _, self := range tierAddrs {
		d, err := StartDomestic(DomesticConfig{
			ProxyListen:     self,
			WebListen:       "127.0.0.1:0",
			RemoteAddr:      remote.Addr().String(),
			Secret:          secret,
			Whitelist:       []string{originHost},
			PublicProxyAddr: self,
			CacheMB:         4,
			ShardAddrs:      tierAddrs,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		shards = append(shards, d)
	}

	target := "http://" + origin + "/paper"
	for i, d := range shards {
		resp := proxyGet(t, d.ProxyAddr().String(), target)
		if resp.StatusCode != 200 || string(resp.Body) != "peered content" {
			t.Fatalf("shard %d: %d %q", i, resp.StatusCode, resp.Body)
		}
	}
	if got := originHits(); got != 1 {
		t.Errorf("origin fetched %d times by a 2-shard tier, want exactly 1", got)
	}

	// Each process holds its own ring: a takedown is told to each shard.
	shards[0].MarkShardDown(tierAddrs[1])
	if got := shards[0].ShardAddrs(); len(got) != 1 || got[0] != tierAddrs[0] {
		t.Errorf("after MarkShardDown shard 0 publishes %v, want just itself", got)
	}
	if got := shards[1].ShardAddrs(); len(got) != 2 {
		t.Errorf("shard 1 (not yet told) publishes %v, want the full tier", got)
	}
}

// TestStartDomesticShardAddrsValidation checks the multi-process shard
// invariants fail closed with instructive errors.
func TestStartDomesticShardAddrsValidation(t *testing.T) {
	base := func() DomesticConfig {
		return DomesticConfig{
			ProxyListen:     "127.0.0.1:0",
			WebListen:       "127.0.0.1:0",
			RemoteAddr:      "127.0.0.1:1",
			Secret:          []byte("s"),
			PublicProxyAddr: "shard-a.example:8118",
			CacheMB:         4,
			ShardAddrs:      []string{"shard-a.example:8118", "shard-b.example:8118"},
		}
	}
	cases := []struct {
		name string
		mut  func(*DomesticConfig)
		want string
	}{
		{"one shard", func(c *DomesticConfig) {
			c.ShardAddrs = c.ShardAddrs[:1]
		}, "one-shard tier"},
		{"no cache", func(c *DomesticConfig) { c.CacheMB = 0 }, "requires CacheMB"},
		{"with transports", func(c *DomesticConfig) {
			c.RemoteAddr = ""
			c.Transports = []string{"blinded=127.0.0.1:1"}
		}, "mutually exclusive"},
		{"not a member", func(c *DomesticConfig) {
			c.PublicProxyAddr = "elsewhere.example:8118"
		}, "not in ShardAddrs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			d, err := StartDomestic(cfg)
			if err == nil {
				d.Close()
				t.Fatal("StartDomestic accepted an invalid shard config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestStartDomesticTierValidation checks the one-process tier's
// invariants.
func TestStartDomesticTierValidation(t *testing.T) {
	base := func() DomesticConfig {
		return DomesticConfig{
			ProxyListen: "127.0.0.1:0",
			WebListen:   "127.0.0.1:0",
			RemoteAddr:  "127.0.0.1:1",
			Secret:      []byte("s"),
			CacheMB:     4,
		}
	}
	cases := []struct {
		name   string
		shards int
		mut    func(*DomesticConfig)
		want   string
	}{
		{"one shard", 1, func(*DomesticConfig) {}, "single proxy"},
		{"no cache", 2, func(c *DomesticConfig) { c.CacheMB = 0 }, "requires CacheMB"},
		{"with transports", 2, func(c *DomesticConfig) {
			c.RemoteAddr = ""
			c.Transports = []string{"blinded=127.0.0.1:1"}
		}, "mutually exclusive"},
		{"shard addrs set", 2, func(c *DomesticConfig) {
			c.ShardAddrs = []string{"a:1", "b:1"}
		}, "leave ShardAddrs empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			tier, err := StartDomesticTier(cfg, tc.shards)
			if err == nil {
				tier.Close()
				t.Fatal("StartDomesticTier accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestRealSocketAutoscaledTier starts a three-shard tier with two shards
// parked as standbys, then drives the scale path by hand (the control
// loop itself is interval-gated off): a scale-up must warm the joiners
// from peers without touching the origin, a scale-down must drain the
// leaver's keys to the survivors, and the admin listener must expose the
// tier's membership gauges and the /scale-events log throughout.
func TestRealSocketAutoscaledTier(t *testing.T) {
	origin, originHits := startCountingOrigin(t, "elastic content")
	originHost, _, _ := strings.Cut(origin, ":")
	secret := []byte("elastic-secret")

	remote, err := StartRemote(RemoteConfig{Listen: "127.0.0.1:0", Secret: secret})
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	tier, err := StartDomesticTier(DomesticConfig{
		ProxyListen: "127.0.0.1:0",
		WebListen:   "127.0.0.1:0",
		AdminListen: "127.0.0.1:0",
		RemoteAddr:  remote.Addr().String(),
		Secret:      secret,
		Whitelist:   []string{originHost},
		CacheMB:     4,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()

	// A second StartAutoscale must be refused once one is running.
	if err := tier.StartAutoscale(AutoscaleOptions{InitialShards: 1, Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if err := tier.StartAutoscale(AutoscaleOptions{InitialShards: 1, Interval: time.Hour}); err == nil {
		t.Error("second StartAutoscale did not fail")
	}
	if tier.Autoscaler() == nil {
		t.Fatal("Autoscaler() = nil after StartAutoscale")
	}

	// Standbys are parked: the PAC routes only to shard 0.
	if got := tier.Shards()[0].ShardAddrs(); len(got) != 1 {
		t.Fatalf("active shards at start = %v, want just shard 0", got)
	}

	adminGet := func(d *DomesticProxy, path string) string {
		t.Helper()
		conn, err := net.DialTimeout("tcp", d.AdminAddr().String(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: admin\r\n\r\n", path)
		resp, err := httpsim.ReadResponse(bufio.NewReader(conn))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		return string(resp.Body)
	}
	metrics := adminGet(tier.Shards()[0], "/metrics")
	for _, want := range []string{"shard.director.live=1", "shard.director.members=3", "autoscale.ticks=0"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if got := adminGet(tier.Shards()[0], "/scale-events"); got != "no scale events\n" {
		t.Errorf("/scale-events before any decision = %q", got)
	}

	// Populate the lone active shard, then scale up: joiners pre-seed the
	// keys they take over from peers, never from across the border.
	for i := 0; i < 12; i++ {
		proxyGet(t, tier.Shards()[0].ProxyAddr().String(), fmt.Sprintf("http://%s/paper/%d", origin, i))
	}
	hitsBefore := originHits()
	preseeded := 0
	for i := 1; i < 3; i++ {
		preseeded += tier.admitShard(i)
	}
	if preseeded == 0 {
		t.Error("scale-up pre-seeded no keys")
	}
	if got := originHits(); got != hitsBefore {
		t.Errorf("warm-up fetched the origin %d extra times, want 0", got-hitsBefore)
	}
	if got := tier.Shards()[0].ShardAddrs(); len(got) != 3 {
		t.Errorf("active shards after scale-up = %v, want all 3", got)
	}
	if got := adminGet(tier.Shards()[2], "/metrics"); !strings.Contains(got, "shard.director.live=3") {
		t.Errorf("joiner's /metrics does not show the full tier:\n%s", got)
	}

	// Route some traffic through the highest shard so it owns fresh keys,
	// then scale down: its keys drain to the survivors domestically.
	for i := 0; i < 4; i++ {
		proxyGet(t, tier.Shards()[2].ProxyAddr().String(), fmt.Sprintf("http://%s/cite/%d", origin, i))
	}
	hitsBefore = originHits()
	handed := tier.retireShard(2)
	if handed == 0 {
		t.Error("scale-down handed no keys to the survivors")
	}
	if got := originHits(); got != hitsBefore {
		t.Errorf("drain fetched the origin %d extra times, want 0", got-hitsBefore)
	}
	if got := tier.Shards()[0].ShardAddrs(); len(got) != 2 {
		t.Errorf("active shards after scale-down = %v, want 2", got)
	}
}

// TestRenderScaleEvents checks the admin /scale-events formatting: one
// priced line per decision, with apply errors surfaced.
func TestRenderScaleEvents(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	got := string(renderScaleEvents([]autoscale.Decision{
		{At: at, From: 1, To: 3, Reason: "demand", VMPerDayUSD: 4.20, DeltaUSD: 2.10},
		{At: at.Add(time.Minute), From: 3, To: 2, Reason: "idle", VMPerDayUSD: 3.15, DeltaUSD: -1.05, Err: fmt.Errorf("boom")},
	}))
	want := "2026-08-08T12:00:00Z 1->3 demand vm=4.20$/day delta=+2.10$/day\n" +
		"2026-08-08T12:01:00Z 3->2 idle vm=3.15$/day delta=-1.05$/day err=boom\n"
	if got != want {
		t.Errorf("renderScaleEvents:\n got %q\nwant %q", got, want)
	}
}
