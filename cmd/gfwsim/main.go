// Command gfwsim demonstrates the Great Firewall simulator: it builds a
// small censored world, sends one flow of each protocol class across the
// border, and prints the firewall's classification and verdicts —
// including a live DNS poisoning and an active-probe confirmation of a
// Shadowsocks server.
package main

import (
	"flag"
	"fmt"
	"time"

	"scholarcloud/internal/dnssim"
	"scholarcloud/internal/experiments"
	"scholarcloud/internal/httpsim"
)

func main() {
	seed := flag.Uint64("seed", 2017, "simulation seed")
	flag.Parse()

	w := experiments.NewWorld(experiments.Config{Seed: *seed})
	defer w.Close()

	fmt.Println("gfwsim — one flow per protocol class across the censored border")
	fmt.Println()

	step := func(name string, fn func() string) {
		outcome := fn()
		fmt.Printf("  %-34s %s\n", name, outcome)
	}

	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	// DNS poisoning.
	must(w.Run(func() error {
		r := dnssim.NewResolver(w.Client, w.Env.Clock, "8.8.8.8:53")
		step("DNS lookup scholar.google.com", func() string {
			ip, err := r.Lookup("scholar.google.com")
			if err != nil {
				return "error: " + err.Error()
			}
			return "answer " + ip + "  (poisoned)"
		})
		step("DNS lookup scholar-mirror.example", func() string {
			ip, err := r.Lookup("scholar-mirror.example")
			if err != nil {
				return "error: " + err.Error()
			}
			return "answer " + ip + "  (genuine)"
		})
		return nil
	}))

	// Keyword-filtered direct access vs tunnels.
	type attempt struct {
		name string
		run  func() *httpsim.VisitStats
	}
	attempts := []attempt{
		{"direct http://scholar.google.com", func() *httpsim.VisitStats {
			b := httpsim.NewBrowser(w.Direct(w.Client), w.Env.Clock)
			return b.Visit("http://scholar.google.com/")
		}},
		{"native VPN (PPTP classified)", func() *httpsim.VisitStats {
			m := w.NativeVPN(w.Client)
			defer m.Close()
			b := httpsim.NewBrowser(m, w.Env.Clock)
			return b.Visit("http://scholar.google.com/")
		}},
		{"shadowsocks (probe target)", func() *httpsim.VisitStats {
			m := w.Shadowsocks(w.Client)
			defer m.Close()
			b := httpsim.NewBrowser(m, w.Env.Clock)
			return b.Visit("http://scholar.google.com/")
		}},
		{"scholarcloud (blinded tunnel)", func() *httpsim.VisitStats {
			m := w.ScholarCloud(w.Client)
			defer m.Close()
			b := httpsim.NewBrowser(m, w.Env.Clock)
			return b.Visit("http://scholar.google.com/")
		}},
	}
	for _, a := range attempts {
		a := a
		must(w.Run(func() error {
			step(a.name, func() string {
				st := a.run()
				if st.Failed {
					return "BLOCKED: " + st.Err.Error()
				}
				return fmt.Sprintf("loaded in %v", st.PLT.Round(time.Millisecond))
			})
			return nil
		}))
	}

	// Let active probes finish, then report.
	must(w.Run(func() error {
		w.Env.Clock.Sleep(60 * time.Second)
		return nil
	}))

	st := w.GFW.Stats()
	fmt.Println()
	fmt.Println("GFW counters:")
	fmt.Printf("  packets inspected   %d\n", st.PacketsInspected)
	fmt.Printf("  flows tracked       %d\n", st.FlowsTracked)
	fmt.Printf("  DNS poisoned        %d\n", st.DNSPoisoned)
	fmt.Printf("  IP-blocked packets  %d\n", st.IPBlocked)
	fmt.Printf("  keyword resets      %d\n", st.KeywordResets)
	fmt.Printf("  probes launched     %d\n", st.ProbesLaunched)
	fmt.Printf("  servers confirmed   %d  %v\n", st.ServersConfirmed, w.GFW.ConfirmedServers())
	fmt.Printf("  servers exonerated  %d\n", st.ServersExonerated)
	fmt.Printf("  interference drops  %d\n", st.InterferenceDrops)

	fmt.Println()
	fmt.Println("DPI classification of observed flows:")
	for class, count := range w.GFW.ClassCounts() {
		fmt.Printf("  %-12s %d\n", class, count)
	}
}
