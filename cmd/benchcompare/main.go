// Command benchcompare diffs two scholarbench -bench-out reports and
// fails when the fresh run regressed against the baseline.
//
// Usage:
//
//	benchcompare -baseline BENCH_experiments.json -fresh /tmp/bench.json [-tolerance 0.5]
//
// A figure regresses when its fresh wall time exceeds the baseline's by
// more than the tolerance fraction (default 0.5, i.e. +50%) AND by more
// than the absolute floor (default 0.25s). Slack that wide keeps the
// gate about real slowdowns — an accidentally quadratic sweep, a figure
// that doubled its world count — rather than scheduler noise between
// runs on shared hardware; the floor exists because on a sub-100ms
// figure a few dozen milliseconds of scheduler jitter trips any purely
// relative threshold. Figures only present in one report are noted but
// are not regressions (new figures land with new PRs; the baseline
// catches up when it is next regenerated).
//
// Reports are only comparable when they describe the same workload on
// the same effective machine: the tool refuses (exit 2) when the two
// reports disagree on full, seeds, or gomaxprocs — a quick partial run
// diffed against a full baseline would otherwise silently pass (every
// figure faster) or spuriously fail (every figure slower) the gate.
// Exit status: 0 clean, 1 regression, 2 usage, unreadable input, or
// incomparable metadata.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type report struct {
	GeneratedAt string   `json:"generated_at"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	Seeds       int      `json:"seeds"`
	Full        bool     `json:"full"`
	Worlds      int      `json:"worlds"`
	WallSeconds float64  `json:"wall_seconds"`
	Figures     []figure `json:"figures"`
}

type figure struct {
	Fig     string  `json:"fig"`
	Cells   int     `json:"cells"`
	Seconds float64 `json:"seconds"`
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_experiments.json", "committed baseline report")
	fresh := flag.String("fresh", "", "freshly generated report to compare against the baseline")
	tolerance := flag.Float64("tolerance", 0.5, "allowed per-figure slowdown as a fraction of the baseline")
	floor := flag.Float64("floor", 0.25, "absolute slowdown in seconds a figure must also exceed to count as a regression")
	flag.Parse()
	if *fresh == "" || *tolerance < 0 || *floor < 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: -fresh is required; -tolerance and -floor must be non-negative")
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err == nil {
		var cur *report
		if cur, err = load(*fresh); err == nil {
			os.Exit(compare(base, cur, *tolerance, *floor))
		}
	}
	fmt.Fprintln(os.Stderr, "benchcompare:", err)
	os.Exit(2)
}

func compare(base, cur *report, tol, floor float64) int {
	if msg := incomparable(base, cur); msg != "" {
		fmt.Fprintf(os.Stderr, "benchcompare: %s — not comparable; regenerate one side with matching flags\n", msg)
		return 2
	}
	baseFigs := make(map[string]figure, len(base.Figures))
	for _, f := range base.Figures {
		baseFigs[f.Fig] = f
	}

	regressions := 0
	fmt.Printf("  %-8s %-12s %-12s %s\n", "fig", "baseline-s", "fresh-s", "verdict")
	for _, f := range cur.Figures {
		b, ok := baseFigs[f.Fig]
		if !ok {
			fmt.Printf("  %-8s %-12s %-12.3f new figure (no baseline)\n", f.Fig, "-", f.Seconds)
			continue
		}
		delete(baseFigs, f.Fig)
		limit := b.Seconds * (1 + tol)
		if min := b.Seconds + floor; limit < min {
			limit = min
		}
		verdict := "ok"
		if f.Seconds > limit {
			verdict = fmt.Sprintf("REGRESSION (limit %.3fs)", limit)
			regressions++
		}
		fmt.Printf("  %-8s %-12.3f %-12.3f %s\n", f.Fig, b.Seconds, f.Seconds, verdict)
	}
	for _, f := range base.Figures {
		if _, dropped := baseFigs[f.Fig]; dropped {
			fmt.Printf("  %-8s dropped from fresh report\n", f.Fig)
		}
	}
	fmt.Printf("total wall: baseline %.1fs (%d worlds) -> fresh %.1fs (%d worlds)\n",
		base.WallSeconds, base.Worlds, cur.WallSeconds, cur.Worlds)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %d figure(s) regressed beyond +%.0f%%\n",
			regressions, tol*100)
		return 1
	}
	return 0
}

// incomparable reports why two bench reports describe different
// workloads (empty string when they match). Older baselines predate the
// gomaxprocs/seeds fields; a zero on either side means "unrecorded" and
// is not held against the comparison.
func incomparable(base, cur *report) string {
	if base.Full != cur.Full {
		return fmt.Sprintf("baseline full=%v but fresh full=%v", base.Full, cur.Full)
	}
	if base.Seeds != 0 && cur.Seeds != 0 && base.Seeds != cur.Seeds {
		return fmt.Sprintf("baseline seeds=%d but fresh seeds=%d", base.Seeds, cur.Seeds)
	}
	if base.GoMaxProcs != 0 && cur.GoMaxProcs != 0 && base.GoMaxProcs != cur.GoMaxProcs {
		return fmt.Sprintf("baseline gomaxprocs=%d but fresh gomaxprocs=%d", base.GoMaxProcs, cur.GoMaxProcs)
	}
	return ""
}
