// Command pacgen generates a proxy auto-config file for a ScholarCloud
// whitelist.
//
//	pacgen -proxy 101.6.6.6:8118 -domains scholar.google.com,accounts.google.com
package main

import (
	"flag"
	"fmt"
	"strings"

	"scholarcloud/internal/pac"
)

func main() {
	proxy := flag.String("proxy", "127.0.0.1:8118", "domestic proxy host:port")
	domains := flag.String("domains", "scholar.google.com,accounts.google.com",
		"comma-separated whitelist")
	flag.Parse()
	cfg := pac.New(*proxy, strings.Split(*domains, ","))
	fmt.Print(cfg.JavaScript())
}
