// Command scholarcloud runs the deployable split-proxy system over real
// sockets.
//
// Remote proxy (outside the censored network):
//
//	scholarcloud remote -listen :8443 -secret <key>
//
// Domestic proxy (inside; what browsers' PAC points at):
//
//	scholarcloud domestic -listen :8118 -web :8080 \
//	    -remote remote.example.com:8443 -secret <key> \
//	    -whitelist scholar.google.com,accounts.google.com \
//	    -public proxy.example.com:8118
//
// A domestic proxy can run a carrier escalation ladder instead of a
// fixed remote: -transports lists name=host:port rungs fastest first
// (blinded, rendezvous, dns-tunnel); the proxy prefers the lowest
// healthy rung, escalates on sustained transport failure, and probes
// back down when the rung below recovers. -censor-profile names the
// censorship regime the deployment expects to face (scripted, adaptive,
// or regional) and retunes the ladder — and, with -resilient, the retry
// budget — with the survival tuning the multi-border experiments
// measure.
//
// -shards N runs a horizontally sharded domestic tier in one process:
// shard i binds the -listen/-web/-admin (and derives the -public)
// address with the port incremented by i, the PAC assigns each user to
// a shard by rendezvous hash, and the shards' caches peer so each
// shared object crosses the border once tier-wide (requires -cache-mb).
// Multi-machine tiers instead start one process per shard, each listing
// the whole tier in DomesticConfig.ShardAddrs.
//
// -autoscale N makes the -shards tier elastic: N shards start active and
// the rest park as standbys while a metrics-driven control loop grows
// and shrinks the active set from the tier's own request rate — joiners
// warm their caches from peers before entering the ring, leavers drain
// their keys to the survivors. Scaling decisions are priced in $/day and
// served on every shard's -admin listener at /scale-events.
//
// Users configure their browser with http://<domestic>/pac — the single
// setting ScholarCloud requires.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"scholarcloud"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "remote":
		runRemote(os.Args[2:])
	case "domestic":
		runDomestic(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scholarcloud remote|domestic [flags]")
	os.Exit(2)
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

func runRemote(args []string) {
	fs := flag.NewFlagSet("remote", flag.ExitOnError)
	listen := fs.String("listen", ":8443", "tunnel listen address")
	admin := fs.String("admin", "", "admin address serving /metrics and /healthz (empty = disabled)")
	secret := fs.String("secret", "", "blinding secret shared with the domestic proxy")
	epoch := fs.Uint64("epoch", 0, "blinding epoch")
	fs.Parse(args)
	if *secret == "" {
		fmt.Fprintln(os.Stderr, "remote: -secret is required")
		os.Exit(2)
	}
	r, err := scholarcloud.StartRemote(scholarcloud.RemoteConfig{
		Listen:      *listen,
		AdminListen: *admin,
		Secret:      []byte(*secret),
		Epoch:       *epoch,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "remote:", err)
		os.Exit(1)
	}
	defer r.Close()
	fmt.Printf("scholarcloud remote proxy on %s (epoch %d)\n", r.Addr(), *epoch)
	if a := r.AdminAddr(); a != nil {
		fmt.Printf("admin endpoints at http://%s/metrics and /healthz\n", a)
	}
	waitForInterrupt()
}

func runDomestic(args []string) {
	fs := flag.NewFlagSet("domestic", flag.ExitOnError)
	listen := fs.String("listen", ":8118", "browser-facing proxy address")
	web := fs.String("web", ":8080", "PAC/whitelist web address")
	admin := fs.String("admin", "", "admin address serving /metrics and /healthz (empty = disabled)")
	remote := fs.String("remote", "", "remote proxy host:port (comma-separate several to run them as a managed fleet)")
	transports := fs.String("transports", "", "carrier escalation ladder: comma-separated name=host:port rungs, fastest first, e.g. blinded=r.example:8443,rendezvous=gw.example:443,dns-tunnel=127.0.0.1:5353 (replaces -remote)")
	censorProfile := fs.String("censor-profile", "", "censorship regime to survive, one of "+strings.Join(scholarcloud.CensorProfiles(), "|")+": retunes the -transports ladder (and, with -resilient, the retry budget) with the survival tuning the multi-border experiments measure")
	sessions := fs.Int("sessions", 0, "pre-dialed carrier sessions per fleet remote (0 = default)")
	secret := fs.String("secret", "", "blinding secret shared with the remote proxy")
	epoch := fs.Uint64("epoch", 0, "blinding epoch")
	whitelist := fs.String("whitelist", "scholar.google.com,accounts.google.com",
		"comma-separated visible whitelist of legal domains")
	public := fs.String("public", "", "proxy address written into the PAC file")
	cacheMB := fs.Int("cache-mb", 0, "shared content-cache budget in MiB (0 = no cache)")
	cacheTTL := fs.Duration("cache-ttl", 0, "heuristic freshness TTL for cached responses without max-age (0 = default)")
	shards := fs.Int("shards", 0, "run a sharded domestic tier of this many proxies in one process: shard i binds -listen/-web/-admin (and derives -public) at port+i; needs -cache-mb")
	autoscaleN := fs.Int("autoscale", 0, "autoscale the -shards tier: start with this many active shards, park the rest as standbys, and scale on demand (0 = static tier)")
	autoscaleEvery := fs.Duration("autoscale-interval", 0, "autoscaler control-loop interval (0 = default 15s; needs -autoscale)")
	resilient := fs.Bool("resilient", false, "enable client-path resilience: dial/request deadlines, reconnect backoff, hedged failover")
	dialTimeout := fs.Duration("dial-timeout", 0, "resilience per-dial deadline (0 = default 3s; needs -resilient)")
	requestTimeout := fs.Duration("request-timeout", 0, "resilience per-request deadline (0 = default 30s; needs -resilient)")
	fs.Parse(args)
	if *secret == "" || (*remote == "" && *transports == "") {
		fmt.Fprintln(os.Stderr, "domestic: -secret and one of -remote or -transports are required")
		os.Exit(2)
	}
	var remotes, rungs []string
	if *remote != "" {
		remotes = strings.Split(*remote, ",")
	}
	if *transports != "" {
		rungs = strings.Split(*transports, ",")
	}
	cfg := scholarcloud.DomesticConfig{
		ProxyListen:       *listen,
		WebListen:         *web,
		AdminListen:       *admin,
		RemoteAddrs:       remotes,
		Transports:        rungs,
		CensorProfile:     *censorProfile,
		SessionsPerRemote: *sessions,
		Secret:            []byte(*secret),
		Epoch:             *epoch,
		Whitelist:         strings.Split(*whitelist, ","),
		PublicProxyAddr:   *public,
		CacheMB:           *cacheMB,
		CacheTTL:          *cacheTTL,
		Resilience:        *resilient,
		DialTimeout:       *dialTimeout,
		RequestTimeout:    *requestTimeout,
	}
	if *autoscaleN > 0 && *shards < 2 {
		fmt.Fprintln(os.Stderr, "domestic: -autoscale needs a -shards tier to scale")
		os.Exit(2)
	}
	if *shards >= 2 {
		runDomesticTier(cfg, *shards, *autoscaleN, *autoscaleEvery)
		return
	}
	d, err := scholarcloud.StartDomestic(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "domestic:", err)
		os.Exit(1)
	}
	defer d.Close()
	fmt.Printf("scholarcloud domestic proxy on %s; PAC at http://%s/pac\n",
		d.ProxyAddr(), d.WebAddr())
	if a := d.AdminAddr(); a != nil {
		fmt.Printf("admin endpoints at http://%s/metrics and /healthz\n", a)
	}
	if t := d.ActiveTransport(); t != "" {
		fmt.Printf("transport ladder active rung: %s\n", t)
	}
	if *censorProfile != "" {
		fmt.Printf("censor survival tuning armed for the %q regime\n", *censorProfile)
	}
	waitForInterrupt()
}

// runDomesticTier starts the one-process sharded tier (optionally
// autoscaled) and prints every shard's listeners so operators can point
// health checks at each.
func runDomesticTier(cfg scholarcloud.DomesticConfig, shards, autoscaleN int, autoscaleEvery time.Duration) {
	tier, err := scholarcloud.StartDomesticTier(cfg, shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "domestic:", err)
		os.Exit(1)
	}
	defer tier.Close()
	if autoscaleN > 0 {
		err := tier.StartAutoscale(scholarcloud.AutoscaleOptions{
			InitialShards: autoscaleN,
			Interval:      autoscaleEvery,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "domestic:", err)
			os.Exit(1)
		}
		fmt.Printf("scholarcloud autoscaled domestic tier: %d of %d shards active (events at /scale-events)\n",
			autoscaleN, shards)
	} else {
		fmt.Printf("scholarcloud sharded domestic tier: %d shards\n", shards)
	}
	for i, d := range tier.Shards() {
		fmt.Printf("  shard %d proxy on %s; PAC at http://%s/pac\n", i, d.ProxyAddr(), d.WebAddr())
		if a := d.AdminAddr(); a != nil {
			fmt.Printf("  shard %d admin at http://%s/metrics and /healthz\n", i, a)
		}
	}
	waitForInterrupt()
}
