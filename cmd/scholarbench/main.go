// Command scholarbench regenerates every figure of the paper's evaluation
// (Figs. 3–7) against the simulated censored internet.
//
// Usage:
//
//	scholarbench [-fig 2|3|4|5a|5b|5c|6a|6bc|7|ops|fleet|cache|faults|transports|censor|shards|autoscale|scale|all]
//	             [-seed N] [-seeds N] [-parallel N] [-full] [-flow-clients LIST]
//	             [-bench-out FILE]
//	scholarbench -trace <method>
//
// Figures are decomposed into independent (cell × seed) worlds and run
// over a bounded worker pool: -parallel N caps concurrent worlds (default
// GOMAXPROCS), and -seeds N replicates every cell on seeds seed..seed+N-1,
// rendering mean ± 95% CI tables. Output is byte-identical for any
// -parallel value. -full runs the paper-scale workload (a simulated day
// per series); the default quick mode samples each series lightly.
// -bench-out writes a machine-readable performance record (wall time,
// worlds/sec, per-figure timings). -trace renders a per-hop flow trace of
// one first-time page load through the named method (one of the study's
// methods or "direct-us") instead of the figures.
//
// The "scale" figure runs flow-level client cohorts (fluid load plus a
// few sampled packet-level clients; quick sweeps 500/5k, -full sweeps
// 1k/10k/100k/1M). -flow-clients overrides the cohort-size axis with a
// comma-separated list, e.g. -fig scale -flow-clients 1000,100000.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scholarcloud/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2,3,4,5a,5b,5c,6a,6bc,7,ops,fleet,cache,faults,transports,censor,shards,autoscale,scale,all")
	seed := flag.Uint64("seed", 2017, "simulation seed")
	seeds := flag.Int("seeds", 1, "replicate every figure cell on this many consecutive seeds (mean ± 95% CI tables when > 1)")
	parallel := flag.Int("parallel", 0, "max concurrent simulated worlds (0 = GOMAXPROCS)")
	full := flag.Bool("full", false, "paper-scale sample counts (slower)")
	benchOut := flag.String("bench-out", "", "write a machine-readable benchmark report (JSON) to this file")
	flowClients := flag.String("flow-clients", "", "override the scale figure's cohort-size axis (comma-separated client counts)")
	trace := flag.String("trace", "", "render a per-hop flow trace of one page load through the named method")
	flag.Parse()

	if *trace != "" {
		runTrace(*trace, *seed)
		return
	}

	if *fig != "all" && !experiments.KnownFigure(*fig) {
		fmt.Fprintf(os.Stderr, "scholarbench: unknown figure %q (want one of %s, or all)\n",
			*fig, strings.Join(experiments.FigureOrder, ","))
		os.Exit(2)
	}

	q := experiments.Quick()
	if *full {
		q = experiments.Full()
	}
	if *flowClients != "" {
		sweep, err := parseFlowClients(*flowClients)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scholarbench: %v\n", err)
			os.Exit(2)
		}
		q.FlowSweep = sweep
	}
	res, err := experiments.RunSweep(experiments.SweepOptions{
		Seed:    *seed,
		Seeds:   *seeds,
		Workers: *parallel,
		Quality: q,
		Figures: []string{*fig},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "scholarbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Output)

	if *benchOut != "" {
		bench := res.Bench
		bench.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		bench.Full = *full
		buf, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "scholarbench: encode bench report: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*benchOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "scholarbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseFlowClients parses the -flow-clients list into the scale figure's
// cohort-size axis.
func parseFlowClients(s string) ([]int, error) {
	var sweep []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -flow-clients entry %q (want positive client counts, e.g. 1000,100000)", part)
		}
		sweep = append(sweep, n)
	}
	return sweep, nil
}

// runTrace performs one first-time page load through the named method
// with a flow tracer on every layer and prints the per-hop trace. It
// uses the paper's default world (no fleet), so the ScholarCloud trace
// matches Fig. 4's session structure exactly.
func runTrace(method string, seed uint64) {
	w := experiments.NewWorld(experiments.Config{Seed: seed})
	defer w.Close()
	f, ok := w.FactoryByName(method)
	if !ok {
		fmt.Fprintf(os.Stderr, "trace: unknown method %q\n", method)
		os.Exit(2)
	}
	tr, st, err := w.TracePageLoad(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace %s: %v\n", method, err)
		os.Exit(1)
	}
	fmt.Print(tr.Render(fmt.Sprintf("%s first-time page load of %s", method, f.URL)))
	fmt.Printf("  -- plt=%v resources=%d redirects=%d conns=%d bytes=%d\n",
		st.PLT, st.Resources, st.Redirects, st.NewConns, st.BytesFetched)
}
