// Command scholarbench regenerates every figure of the paper's evaluation
// (Figs. 3–7) against the simulated censored internet.
//
// Usage:
//
//	scholarbench [-fig 3|4|5a|5b|5c|6a|6bc|7|fleet|all] [-seed N] [-full]
//	scholarbench -trace <method>
//
// -full runs the paper-scale workload (a simulated day per series);
// the default quick mode samples each series lightly. -trace renders a
// per-hop flow trace of one first-time page load through the named
// method (one of the study's methods or "direct-us") instead of the
// figures.
package main

import (
	"flag"
	"fmt"
	"os"

	"scholarcloud/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2,3,4,5a,5b,5c,6a,6bc,7,ops,fleet,all")
	seed := flag.Uint64("seed", 2017, "simulation seed")
	full := flag.Bool("full", false, "paper-scale sample counts (slower)")
	trace := flag.String("trace", "", "render a per-hop flow trace of one page load through the named method")
	flag.Parse()

	q := experiments.Quick()
	if *full {
		q = experiments.Full()
	}

	if *trace != "" {
		runTrace(*trace, *seed)
		return
	}

	if *fig == "3" || *fig == "all" {
		fmt.Println(experiments.ReportFig3(*seed))
	}
	if *fig == "3" {
		return
	}

	w := experiments.NewWorld(experiments.Config{Seed: *seed})
	defer w.Close()

	type section struct {
		name string
		run  func() (string, error)
	}
	sections := []section{
		{"2", func() (string, error) { return experiments.ReportArchitecture(), nil }},
		{"4", w.ReportFig4},
		{"5a", func() (string, error) { return w.ReportFig5a(q) }},
		{"5b", func() (string, error) { return w.ReportFig5b(q) }},
		{"5c", func() (string, error) { return w.ReportFig5c(q) }},
		{"6a", func() (string, error) { return w.ReportFig6a(q) }},
		{"6bc", func() (string, error) { return w.ReportFig6bc(q) }},
		{"7", func() (string, error) { return w.ReportFig7(q) }},
		{"ops", func() (string, error) { return w.ReportDeployment(q) }},
		// The fleet section builds its own worlds (one per pool size), so
		// the shared world's figures stay untouched by prober traffic.
		{"fleet", func() (string, error) { return experiments.ReportFleet(*seed, q) }},
	}
	for _, s := range sections {
		if *fig != "all" && *fig != s.name {
			continue
		}
		out, err := s.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}

// runTrace performs one first-time page load through the named method
// with a flow tracer on every layer and prints the per-hop trace. It
// uses the paper's default world (no fleet), so the ScholarCloud trace
// matches Fig. 4's session structure exactly.
func runTrace(method string, seed uint64) {
	w := experiments.NewWorld(experiments.Config{Seed: seed})
	defer w.Close()
	f, ok := w.FactoryByName(method)
	if !ok {
		fmt.Fprintf(os.Stderr, "trace: unknown method %q\n", method)
		os.Exit(2)
	}
	tr, st, err := w.TracePageLoad(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace %s: %v\n", method, err)
		os.Exit(1)
	}
	fmt.Print(tr.Render(fmt.Sprintf("%s first-time page load of %s", method, f.URL)))
	fmt.Printf("  -- plt=%v resources=%d redirects=%d conns=%d bytes=%d\n",
		st.PLT, st.Resources, st.Redirects, st.NewConns, st.BytesFetched)
}
