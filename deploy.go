package scholarcloud

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"scholarcloud/internal/autoscale"
	"scholarcloud/internal/cache"
	"scholarcloud/internal/carrier"
	"scholarcloud/internal/censor"
	"scholarcloud/internal/core"
	"scholarcloud/internal/fleet"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/pac"
	"scholarcloud/internal/pki"
	"scholarcloud/internal/shard"
)

// RemoteConfig configures a real-socket remote proxy (the endpoint
// outside the censored network).
type RemoteConfig struct {
	// Listen is the TCP address for domestic-proxy tunnels, e.g. ":8443".
	Listen string
	// AdminListen, when non-empty, serves /metrics (text key=value) and
	// /healthz on a separate operator-facing listener, e.g. "127.0.0.1:9100".
	AdminListen string
	// Secret is the blinding key material shared with the domestic proxy.
	Secret []byte
	// Epoch selects the blinding scheme; both proxies must agree.
	Epoch uint64
	// Name is the certificate common name presented on per-stream
	// channels (default "remote.scholarcloud.example").
	Name string
}

// RemoteProxy is a running remote proxy.
type RemoteProxy struct {
	remote  *core.Remote
	ln      net.Listener
	adminLn net.Listener
	// CACert is the DER self-signed root created at startup; ship it to
	// domestic proxies that want per-stream channel verification.
	CACert []byte
}

// Addr returns the bound listen address.
func (r *RemoteProxy) Addr() net.Addr { return r.ln.Addr() }

// AdminAddr returns the bound admin listener address, or nil when
// AdminListen was not configured.
func (r *RemoteProxy) AdminAddr() net.Addr {
	if r.adminLn == nil {
		return nil
	}
	return r.adminLn.Addr()
}

// Close shuts the proxy down. Nil fields are skipped so a partially
// started proxy (an error exit inside StartRemote) can reuse it as its
// cleanup path.
func (r *RemoteProxy) Close() {
	if r.remote != nil {
		r.remote.Close()
	}
	if r.ln != nil {
		r.ln.Close()
	}
	if r.adminLn != nil {
		r.adminLn.Close()
	}
}

// adminHandler serves the operator endpoints: /metrics renders the
// registry snapshot as sorted "name=value" lines; /healthz reports 200
// while healthy() says so and 503 otherwise. A non-nil scale source adds
// /scale-events, the autoscaler's decision log (one line per transition,
// priced in $/day); it renders a placeholder until a controller starts.
func adminHandler(reg *obs.Registry, healthy func() (bool, string), scale func() []autoscale.Decision) httpsim.Handler {
	m := httpsim.NewMux()
	m.HandleFunc("/metrics", func(_ *httpsim.Request, _ net.Addr) *httpsim.Response {
		var buf bytes.Buffer
		reg.Snapshot().WriteText(&buf)
		resp := httpsim.NewResponse(200, buf.Bytes())
		resp.Header["Content-Type"] = "text/plain; charset=utf-8"
		return resp
	})
	m.HandleFunc("/healthz", func(_ *httpsim.Request, _ net.Addr) *httpsim.Response {
		ok, detail := healthy()
		status := 200
		if !ok {
			status = 503
		}
		return httpsim.NewResponse(status, []byte(detail+"\n"))
	})
	if scale != nil {
		m.HandleFunc("/scale-events", func(_ *httpsim.Request, _ net.Addr) *httpsim.Response {
			resp := httpsim.NewResponse(200, renderScaleEvents(scale()))
			resp.Header["Content-Type"] = "text/plain; charset=utf-8"
			return resp
		})
	}
	return m
}

// renderScaleEvents formats the autoscaler's decision log for the admin
// endpoint: one line per transition with its reason and daily price.
func renderScaleEvents(ds []autoscale.Decision) []byte {
	if len(ds) == 0 {
		return []byte("no scale events\n")
	}
	var buf bytes.Buffer
	for _, d := range ds {
		fmt.Fprintf(&buf, "%s %d->%d %s vm=%.2f$/day delta=%+.2f$/day",
			d.At.UTC().Format(time.RFC3339), d.From, d.To, d.Reason, d.VMPerDayUSD, d.DeltaUSD)
		if d.Err != nil {
			fmt.Fprintf(&buf, " err=%v", d.Err)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// startAdmin binds and serves the admin endpoints, returning the
// listener (nil when addr is empty).
func startAdmin(env netx.Env, addr string, reg *obs.Registry, healthy func() (bool, string), scale func() []autoscale.Decision) (net.Listener, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &httpsim.Server{Handler: adminHandler(reg, healthy, scale), Spawn: env.Spawn}
	go srv.Serve(ln)
	return ln, nil
}

// StartRemote launches the remote proxy over real sockets.
func StartRemote(cfg RemoteConfig) (*RemoteProxy, error) {
	if cfg.Name == "" {
		cfg.Name = "remote.scholarcloud.example"
	}
	ca, err := pki.NewCA("ScholarCloud Deployment CA", nil, nil)
	if err != nil {
		return nil, err
	}
	id, err := ca.Issue(cfg.Name, true)
	if err != nil {
		return nil, err
	}
	env := netx.RealEnv()
	remote := &core.Remote{
		Env: env,
		DialHost: func(host string, port int) (net.Conn, error) {
			return net.Dial("tcp", fmt.Sprintf("%s:%d", host, port))
		},
		Secret:   cfg.Secret,
		Epoch:    cfg.Epoch,
		Identity: id,
	}
	reg := obs.NewRegistry()
	remote.Instrument(reg)
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	// From here on every resource lives in p, so error exits close the
	// partial proxy as a unit rather than maintaining parallel cleanup
	// chains (an earlier version leaked remote's carrier state when the
	// admin bind failed).
	p := &RemoteProxy{remote: remote, ln: ln, CACert: ca.DER}
	adminLn, err := startAdmin(env, cfg.AdminListen, reg, func() (bool, string) { return true, "ok" }, nil)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.adminLn = adminLn
	go remote.Serve(ln)
	return p, nil
}

// DomesticConfig configures a real-socket domestic proxy (the endpoint
// users' browsers are pointed at).
type DomesticConfig struct {
	// ProxyListen is the browser-facing proxy address, e.g. ":8118".
	ProxyListen string
	// WebListen serves /pac and /whitelist, e.g. ":8080".
	WebListen string
	// AdminListen, when non-empty, serves /metrics and /healthz on a
	// separate operator-facing listener, e.g. "127.0.0.1:9101".
	AdminListen string
	// RemoteAddr is the remote proxy's "host:port".
	RemoteAddr string
	// RemoteAddrs lists multiple remote proxies. Takes precedence over
	// RemoteAddr. However many remotes are configured, the domestic proxy
	// runs them as a managed fleet (pre-dialed carrier pools, health
	// probing, load balancing, takedown rotation); a single remote is
	// simply a one-member fleet.
	RemoteAddrs []string
	// SessionsPerRemote sizes each fleet remote's pre-dialed carrier pool
	// (zero selects the fleet default).
	SessionsPerRemote int
	// Secret/Epoch must match the remote proxy.
	Secret []byte
	Epoch  uint64
	// Whitelist is the visible list of incidentally-blocked legal domains
	// the proxy forwards; everything else is refused.
	Whitelist []string
	// PublicProxyAddr is the address written into the generated PAC file
	// (what browsers can reach), e.g. "proxy.example.com:8118".
	PublicProxyAddr string
	// CacheMB, when > 0, runs the proxy with a shared content cache of
	// that many MiB: whitelisted static objects are stored once and
	// served to every user without re-crossing the border, concurrent
	// identical misses coalesce into one upstream fetch, and cache
	// counters surface on the admin /metrics endpoint.
	CacheMB int
	// CacheTTL overrides the cache's heuristic freshness lifetime (zero
	// selects the cache package default, 60 s).
	CacheTTL time.Duration
	// Transports, when non-empty, replaces RemoteAddr/RemoteAddrs with an
	// escalation ladder of carrier rungs. Each entry is "name=host:port":
	// the rung's canonical transport name (see TransportNames) and the
	// address of its entry point — the remote proxy itself for the blinded
	// rung, a rendezvous gateway or tunnel daemon for the others. Rungs are
	// listed fastest (most blockable) first; the proxy prefers the lowest
	// healthy rung, escalates on sustained transport failure, and probes
	// back down when the rung below recovers.
	Transports []string
	// CensorProfile names the censorship regime this deployment expects
	// to face (see CensorProfiles for the known names). It requires
	// Transports — surviving an active censor is the escalation ladder's
	// job — and retunes the ladder for survival: rotate after two
	// consecutive failures instead of three, and probe back down at half
	// the usual cadence so a recovery probe doesn't keep re-landing
	// users on a rung the censor just fingerprinted. With Resilience on
	// it also deepens the retry budget so a request caught mid-crackdown
	// outlives the rotation its own failures trigger. The numbers are
	// the censor package's survival tuning — the same configuration the
	// multi-border experiments measure, so the simulated survival rates
	// transfer to this deployment.
	CensorProfile string
	// ShardAddrs, when non-empty, makes this proxy one shard of a
	// horizontally sharded domestic tier: it lists every shard's public
	// proxy address — including this process's own PublicProxyAddr — in
	// the order agreed tier-wide. The generated PAC then embeds the whole
	// tier with the rendezvous user→shard assignment, and a local cache
	// miss on a key owned by a peer shard is filled from that peer (one
	// border crossing per object for the whole tier) instead of across
	// the border. Every shard of a tier must be started with the same
	// list. Requires CacheMB (the peering tier is a cache tier) and is
	// mutually exclusive with Transports. For the one-process tier the
	// CLI's -shards flag runs, see StartDomesticTier, which derives this
	// list itself.
	ShardAddrs []string
	// Resilience, when true, runs the client path under the resilience
	// policy: per-dial and per-request deadlines, exponential reconnect
	// backoff with deterministic jitter, and hedged retry/failover across
	// fleet remotes. Off preserves the paper deployment's fail-fast
	// behaviour.
	Resilience bool
	// DialTimeout/RequestTimeout override the resilience deadlines (zero
	// selects the core defaults, 3 s per dial and 30 s per request). They
	// take effect only with Resilience on.
	DialTimeout    time.Duration
	RequestTimeout time.Duration
}

// remotes reconciles RemoteAddr and RemoteAddrs.
func (cfg DomesticConfig) remotes() []string {
	if len(cfg.RemoteAddrs) > 0 {
		return cfg.RemoteAddrs
	}
	if cfg.RemoteAddr != "" {
		return []string{cfg.RemoteAddr}
	}
	return nil
}

// transportRungs parses Transports entries ("name=host:port") into
// ladder rungs over real TCP sockets, in listed order.
func transportRungs(specs []string, wrap carrier.WrapFunc) ([]carrier.Transport, error) {
	known := make(map[string]bool)
	for _, n := range carrier.Known() {
		known[n] = true
	}
	seen := make(map[string]bool)
	var rungs []carrier.Transport
	for _, spec := range specs {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("scholarcloud: transport %q: want \"name=host:port\"", spec)
		}
		if !known[name] {
			return nil, fmt.Errorf("scholarcloud: unknown transport %q (known: %s)",
				name, strings.Join(carrier.Known(), ", "))
		}
		if seen[name] {
			return nil, fmt.Errorf("scholarcloud: duplicate transport %q", name)
		}
		seen[name] = true
		rungs = append(rungs, carrier.NewStatic(name,
			func() (net.Conn, error) { return net.Dial("tcp", addr) }, wrap))
	}
	return rungs, nil
}

// DomesticProxy is a running domestic proxy.
type DomesticProxy struct {
	domestic *core.Domestic
	pool     *fleet.Pool
	ladder   *carrier.Ladder
	proxy    *httpsim.Proxy
	proxyLn  net.Listener
	webLn    net.Listener
	adminLn  net.Listener
	policy   *pac.Config
	// reg collects the proxy's metrics; the admin listener renders it and
	// the tier autoscaler samples it.
	reg *obs.Registry
	// ring is the shard tier's rendezvous view when the proxy runs
	// sharded (ShardAddrs or StartDomesticTier); nil for the ordinary
	// single proxy. Tier shards share one ring.
	ring *shard.Ring

	scaleMu sync.Mutex
	scaleFn func() []autoscale.Decision
}

// setScaleSource installs the decision log /scale-events renders; the
// tier autoscaler calls it on every shard when it starts.
func (d *DomesticProxy) setScaleSource(fn func() []autoscale.Decision) {
	d.scaleMu.Lock()
	d.scaleFn = fn
	d.scaleMu.Unlock()
}

// scaleDecisions reads the installed decision log (nil before any
// autoscaler starts).
func (d *DomesticProxy) scaleDecisions() []autoscale.Decision {
	d.scaleMu.Lock()
	fn := d.scaleFn
	d.scaleMu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// ProxyAddr returns the browser-facing address.
func (d *DomesticProxy) ProxyAddr() net.Addr { return d.proxyLn.Addr() }

// WebAddr returns the PAC/whitelist endpoint address.
func (d *DomesticProxy) WebAddr() net.Addr { return d.webLn.Addr() }

// AdminAddr returns the bound admin listener address, or nil when
// AdminListen was not configured.
func (d *DomesticProxy) AdminAddr() net.Addr {
	if d.adminLn == nil {
		return nil
	}
	return d.adminLn.Addr()
}

// PAC returns the generated proxy auto-config file.
func (d *DomesticProxy) PAC() string { return d.policy.JavaScript() }

// ShardAddrs returns the proxy tier the PAC currently publishes: the
// live shards of a sharded deployment, or this proxy alone.
func (d *DomesticProxy) ShardAddrs() []string { return d.policy.Proxies() }

// MarkShardDown routes this shard's view of the tier around a seized
// peer: the dead shard's key range rehashes to survivors and the PAC this
// process serves stops listing it. Every surviving shard of a
// multi-process tier must be told (each holds its own ring); the
// one-process tier's DomesticTier.MarkDown does that fan-out. No-op for
// an unsharded proxy.
func (d *DomesticProxy) MarkShardDown(addr string) {
	if d.ring == nil {
		return
	}
	d.ring.MarkDown(addr)
	d.policy.SetProxies(d.ring.Up())
}

// MarkShardUp readmits a recovered peer shard (see MarkShardDown).
func (d *DomesticProxy) MarkShardUp(addr string) {
	if d.ring == nil {
		return
	}
	d.ring.MarkUp(addr)
	d.policy.SetProxies(d.ring.Up())
}

// SetWhitelist replaces the visible whitelist at runtime (the on-demand
// alteration the registration regime requires).
func (d *DomesticProxy) SetWhitelist(domains []string) { d.policy.SetDomains(domains) }

// Rotate switches the blinding epoch (coordinate with the remote).
func (d *DomesticProxy) Rotate(epoch uint64) { d.domestic.Rotate(epoch) }

// FleetStats snapshots the remote pool (every deployment runs one, even
// with a single remote).
func (d *DomesticProxy) FleetStats() fleet.Stats {
	return d.pool.Stats()
}

// ActiveTransport reports the escalation ladder's active rung, or ""
// when the proxy was not configured with Transports.
func (d *DomesticProxy) ActiveTransport() string {
	if d.ladder == nil {
		return ""
	}
	return d.ladder.ActiveName()
}

// Close shuts the proxy down. Nil fields are skipped so a partially
// started proxy (an error exit inside StartDomestic) can reuse it as its
// cleanup path.
func (d *DomesticProxy) Close() {
	if d.ladder != nil {
		d.ladder.Close()
	}
	if d.pool != nil {
		d.pool.Close()
	}
	if d.proxy != nil {
		d.proxy.Close()
	}
	if d.proxyLn != nil {
		d.proxyLn.Close()
	}
	if d.webLn != nil {
		d.webLn.Close()
	}
	if d.adminLn != nil {
		d.adminLn.Close()
	}
}

// StartDomestic launches the domestic proxy over real sockets. All
// remote configurations — one address or many — are routed through a
// managed fleet; the paper's single-remote deployment is a degenerate
// one-member pool.
func StartDomestic(cfg DomesticConfig) (*DomesticProxy, error) {
	addrs := cfg.remotes()
	if len(addrs) == 0 && len(cfg.Transports) == 0 {
		return nil, errors.New("scholarcloud: DomesticConfig needs RemoteAddr, RemoteAddrs, or Transports")
	}
	if len(addrs) > 0 && len(cfg.Transports) > 0 {
		return nil, errors.New("scholarcloud: RemoteAddrs and Transports are mutually exclusive — each transport entry names its own entry point")
	}
	if cfg.CensorProfile != "" {
		if _, ok := censor.ProfileByName(cfg.CensorProfile); !ok {
			return nil, fmt.Errorf("scholarcloud: unknown censor profile %q (known: %s)",
				cfg.CensorProfile, strings.Join(censor.ProfileNames(), ", "))
		}
		if len(cfg.Transports) == 0 {
			return nil, errors.New("scholarcloud: CensorProfile requires Transports — the survival tuning applies to the escalation ladder")
		}
	}
	env := netx.RealEnv()
	public := cfg.PublicProxyAddr
	if public == "" {
		public = cfg.ProxyListen
	}
	var ring *shard.Ring
	if len(cfg.ShardAddrs) > 0 {
		if err := validateShardAddrs(cfg, public); err != nil {
			return nil, err
		}
		ring = shard.NewRing(cfg.ShardAddrs)
	}
	policy := pac.New(public, cfg.Whitelist)
	if ring != nil {
		policy.SetProxies(cfg.ShardAddrs)
	}
	domestic := &core.Domestic{
		Env:       env,
		Secret:    cfg.Secret,
		Epoch:     cfg.Epoch,
		Whitelist: policy,
		// Per-stream channel verification requires distributing the
		// remote's CA; the blinded carrier plus shared secret already
		// authenticate the peer, so deployment defaults to accepting the
		// remote's certificate.
		RemoteName: "remote.scholarcloud.example",
	}
	if cfg.CacheMB > 0 {
		cc, err := cache.New(env, cache.Options{
			Capacity:   int64(cfg.CacheMB) << 20,
			DefaultTTL: cfg.CacheTTL,
		})
		if err != nil {
			return nil, err
		}
		domestic.Cache = cc
		if ring != nil {
			// Sibling fetches dial the owning peer's public proxy address on
			// the domestic network; Self must be this shard's tier entry so
			// every peer computes the same ownership.
			cc.SetPeers(&cache.Peers{
				Self:  public,
				Owner: ring.Owner,
				Fetch: core.SiblingFetcher(net.Dial),
			})
		}
	}
	if cfg.Resilience {
		domestic.Resil = &core.Resilience{
			DialTimeout:    cfg.DialTimeout,
			RequestTimeout: cfg.RequestTimeout,
		}
		if cfg.CensorProfile != "" {
			domestic.Resil.Retries = censor.SurvivalRetries
		}
	}
	reg := obs.NewRegistry()
	domestic.Instrument(reg)

	var (
		eps    []fleet.Endpoint
		ladder *carrier.Ladder
	)
	if len(cfg.Transports) > 0 {
		rungs, err := transportRungs(cfg.Transports, domestic.WrapCarrier)
		if err != nil {
			return nil, err
		}
		lcfg := carrier.LadderConfig{Env: env}
		if cfg.CensorProfile != "" {
			lcfg.TripAfter = censor.SurvivalTripAfter
			lcfg.ProbeInterval = censor.SurvivalProbeInterval
		}
		ladder = carrier.NewLadder(lcfg, rungs...)
		ladder.Instrument(reg)
		// The non-fleet fallback path dials whatever rung is active.
		domestic.DialRemote = func() (net.Conn, error) { return ladder.Active().Dial() }
		domestic.NextTransport = ladder.NextName
		for _, tr := range rungs {
			eps = append(eps, fleet.Endpoint{
				Name:      tr.Name(),
				Transport: tr.Name(),
				Dial:      tr.Dial,
			})
		}
	} else {
		domestic.DialRemote = func() (net.Conn, error) { return net.Dial("tcp", addrs[0]) }
		for _, addr := range addrs {
			addr := addr
			eps = append(eps, fleet.Endpoint{
				Name: addr,
				Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
			})
		}
	}
	fcfg := fleet.Config{
		Env:               env,
		NewSession:        domestic.WrapCarrier,
		SessionsPerRemote: cfg.SessionsPerRemote,
	}
	if ladder != nil {
		fcfg.Escalate = ladder
	}
	// A censor-blackholed transport's dials would hang the pool's warmer
	// for the full TCP retry schedule, so a ladder always bounds them.
	if cfg.Resilience || ladder != nil {
		fcfg.DialTimeout = cfg.DialTimeout
		if fcfg.DialTimeout <= 0 {
			fcfg.DialTimeout = 3 * time.Second
		}
	}
	pool, err := fleet.New(fcfg, eps)
	if err != nil {
		return nil, err
	}
	pool.Instrument(reg)
	domestic.Fleet = pool
	if ladder != nil {
		ladder.Start()
	}

	// From here on every resource lives in p, so error exits close the
	// partial proxy as a unit rather than maintaining parallel cleanup
	// chains that drift as resources are added.
	p := &DomesticProxy{domestic: domestic, pool: pool, ladder: ladder, policy: policy, reg: reg, ring: ring}
	p.proxyLn, err = net.Listen("tcp", cfg.ProxyListen)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.webLn, err = net.Listen("tcp", cfg.WebListen)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.adminLn, err = startAdmin(env, cfg.AdminListen, reg, func() (bool, string) {
		if pool.Stats().Healthy() == 0 {
			return false, "no healthy remote endpoints"
		}
		return true, "ok"
	}, p.scaleDecisions)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.proxy = domestic.Proxy()
	go p.proxy.Serve(p.proxyLn)
	webSrv := &httpsim.Server{Handler: domestic.PACHandler(), Spawn: env.Spawn}
	go webSrv.Serve(p.webLn)
	return p, nil
}

// validateShardAddrs checks the multi-process shard-tier invariants
// before StartDomestic allocates anything.
func validateShardAddrs(cfg DomesticConfig, public string) error {
	if len(cfg.ShardAddrs) < 2 {
		return fmt.Errorf("scholarcloud: ShardAddrs lists %d shard — a one-shard tier is the ordinary single proxy, so leave it empty instead", len(cfg.ShardAddrs))
	}
	if cfg.CacheMB <= 0 {
		return errors.New("scholarcloud: ShardAddrs requires CacheMB — the sharded tier exists to scale the shared content cache, and sibling fetches need one on every shard")
	}
	if len(cfg.Transports) > 0 {
		return errors.New("scholarcloud: ShardAddrs and Transports are mutually exclusive — the sharded tier runs on the single blinded carrier")
	}
	for _, a := range cfg.ShardAddrs {
		if a == public {
			return nil
		}
	}
	return fmt.Errorf("scholarcloud: this shard's public address %q is not in ShardAddrs — peers could never agree on key ownership; list every shard, including this one", public)
}

// addrPlus derives shard i's address from base by adding i to the port.
// Empty addresses and ephemeral ports (":0", which the OS numbers at
// bind time) pass through unchanged.
func addrPlus(base string, i int) (string, error) {
	if base == "" || i == 0 {
		return base, nil
	}
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return "", fmt.Errorf("scholarcloud: cannot derive shard %d's address from %q: %v", i, base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("scholarcloud: cannot derive shard %d's address from %q: non-numeric port", i, base)
	}
	if port == 0 {
		return base, nil
	}
	return net.JoinHostPort(host, strconv.Itoa(port+i)), nil
}

// DomesticTier is a sharded domestic tier running in one process: what
// the CLI's -shards flag deploys. Every shard is a full DomesticProxy
// (own listeners, own cache, own admin surface); the tier adds the
// shared rendezvous ring, the peered caches, and the coordinated
// takedown control plane.
type DomesticTier struct {
	shards   []*DomesticProxy
	director *shard.Director

	asMu       sync.Mutex
	autoscaler *autoscale.Controller
	// lastReqs/lastSample turn the tier's monotonic request counter into
	// the controller's sessions/sec demand signal, one delta per tick.
	lastReqs   int64
	lastSample time.Time
	haveSample bool
}

// Shards returns the tier's proxies in shard order.
func (t *DomesticTier) Shards() []*DomesticProxy { return t.shards }

// Addrs returns every shard's public proxy address in tier order, up or
// down.
func (t *DomesticTier) Addrs() []string {
	if t.director == nil {
		return nil
	}
	return t.director.Ring().Names()
}

// PAC returns the tier's proxy auto-config file (every shard serves an
// identical one).
func (t *DomesticTier) PAC() string { return t.shards[0].PAC() }

// SetWhitelist replaces the visible whitelist on every shard.
func (t *DomesticTier) SetWhitelist(domains []string) {
	for _, d := range t.shards {
		d.SetWhitelist(domains)
	}
}

// MarkDown coordinates a takedown: the seized shard's key range rehashes
// to survivors and every shard's PAC stops listing it, so users'
// next PAC download routes only to live shards.
func (t *DomesticTier) MarkDown(addr string) { t.director.MarkDown(addr) }

// MarkUp readmits a recovered shard tier-wide.
func (t *DomesticTier) MarkUp(addr string) { t.director.MarkUp(addr) }

// Autoscaler returns the running controller, or nil before
// StartAutoscale.
func (t *DomesticTier) Autoscaler() *autoscale.Controller {
	t.asMu.Lock()
	defer t.asMu.Unlock()
	return t.autoscaler
}

// Close shuts every shard down. Safe on a partially started tier.
func (t *DomesticTier) Close() {
	if ctl := t.Autoscaler(); ctl != nil {
		ctl.Stop()
	}
	for _, d := range t.shards {
		d.Close()
	}
}

// StartAutoscale turns the static tier elastic: shards beyond
// o.InitialShards are parked as standbys (out of the ring, so the PAC and
// key ownership cover only the active prefix) and a metrics-driven
// control loop on the wall clock grows and shrinks the active set through
// the Director. Demand is sampled from the shards' own request counters
// (proxied requests/sec tier-wide — calibrate Policy.ShardSessionsPerSec
// in the same unit); a scale-up warms the joiner's cache from peers over
// the sibling path before it enters the ring, and a scale-down drains the
// leaver's keys to their new owners. Decisions are priced through opscost
// and served on every shard's admin listener at /scale-events.
func (t *DomesticTier) StartAutoscale(o AutoscaleOptions) error {
	if err := o.Validate(); err != nil {
		return err
	}
	if o.InitialShards > len(t.shards) {
		return fmt.Errorf("scholarcloud: StartAutoscale InitialShards (%d) exceeds the tier's %d shards", o.InitialShards, len(t.shards))
	}
	t.asMu.Lock()
	defer t.asMu.Unlock()
	if t.autoscaler != nil {
		return errors.New("scholarcloud: the tier's autoscaler is already running")
	}

	ring := t.director.Ring()
	addrs := ring.Names()
	for i := o.InitialShards; i < len(addrs); i++ {
		ring.MarkDown(addrs[i])
	}
	up := ring.Up()
	for _, d := range t.shards {
		d.policy.SetProxies(up)
	}

	pol := o.Policy
	if pol.MinShards == 0 {
		pol.MinShards = o.InitialShards
	}
	if pol.MaxShards == 0 {
		pol.MaxShards = len(t.shards)
	}
	ctl, err := autoscale.New(autoscale.Config{
		Policy: pol,
		Sample: t.sampleTier,
		Apply:  t.applyScale,
	})
	if err != nil {
		return err
	}
	for _, d := range t.shards {
		ctl.Instrument(d.reg)
		d.setScaleSource(ctl.Decisions)
	}
	t.autoscaler = ctl
	go ctl.Run(netx.RealEnv(), o.Interval)
	return nil
}

// sampleTier assembles the controller's view from live readings: active
// shard count from the ring, demand as the tier-wide proxied-request rate
// since the previous tick, hit rate from the summed cache counters.
func (t *DomesticTier) sampleTier() autoscale.Sample {
	var reqs, hits, lookups int64
	for _, d := range t.shards {
		reqs += d.reg.Snapshot().Counter("core.domestic.requests")
		st := d.domestic.Cache.Snapshot()
		hits += st.Hits
		lookups += st.Hits + st.Misses
	}
	now := time.Now()
	t.asMu.Lock()
	rate := 0.0
	if t.haveSample {
		if dt := now.Sub(t.lastSample).Seconds(); dt > 0 {
			rate = float64(reqs-t.lastReqs) / dt
		}
	}
	t.lastReqs, t.lastSample, t.haveSample = reqs, now, true
	t.asMu.Unlock()
	hitRate := -1.0
	if lookups > 0 {
		hitRate = float64(hits) / float64(lookups)
	}
	return autoscale.Sample{
		ActiveShards:    len(t.director.Ring().Up()),
		SessionsPerSec:  rate,
		HitRate:         hitRate,
		HostUtilization: -1,
	}
}

// applyScale is the controller's actuator: grow to `to` active shards by
// admitting standbys (lowest index first, each warmed up before joining
// the ring), shrink by retiring actives (highest index first, each
// drained with key handoff). Shard 0 never retires.
func (t *DomesticTier) applyScale(from, to int) error {
	ring := t.director.Ring()
	for len(ring.Up()) < to {
		i := t.shardWhere(ring.IsDown)
		if i < 0 {
			break
		}
		t.admitShard(i)
	}
	for len(ring.Up()) > to {
		i := t.lastActive()
		if i <= 0 {
			break
		}
		t.retireShard(i)
	}
	return nil
}

// shardWhere returns the lowest shard index whose address satisfies pred,
// or -1.
func (t *DomesticTier) shardWhere(pred func(string) bool) int {
	for i, a := range t.director.Ring().Names() {
		if pred(a) {
			return i
		}
	}
	return -1
}

// lastActive returns the highest live shard index, or -1.
func (t *DomesticTier) lastActive() int {
	addrs := t.director.Ring().Names()
	for i := len(addrs) - 1; i >= 0; i-- {
		if !t.director.Ring().IsDown(addrs[i]) {
			return i
		}
	}
	return -1
}

// errWarmupNoBorder makes a warm-up Fetch fail closed: when the sibling
// path cannot supply a key, the pre-seed skips it rather than crossing
// the border.
var errWarmupNoBorder = errors.New("scholarcloud: warm-up fetch must not cross the border")

// activeTierKeys is the union of fresh cache keys across live shards,
// sorted for a stable warm-up sweep order.
func (t *DomesticTier) activeTierKeys() []string {
	ring := t.director.Ring()
	addrs := ring.Names()
	seen := make(map[string]bool)
	var keys []string
	for i, d := range t.shards {
		if ring.IsDown(addrs[i]) {
			continue
		}
		for _, k := range d.domestic.Cache.Keys() {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// admitShard warms up standby shard i and admits it to the ring. Before
// the Director announces the join, the shard pre-seeds every fresh key it
// is about to own — ownership computed on a candidate ring that includes
// it — from the key's current owner over the sibling-fetch path: the
// joiner is still outside the live ring, so its peered Fetch routes to
// the owner, and the border fetcher refuses, so a scale-up moves only
// domestic bytes. Returns the number of keys pre-seeded.
func (t *DomesticTier) admitShard(i int) int {
	ring := t.director.Ring()
	addr := ring.Names()[i]
	if !ring.IsDown(addr) {
		return 0
	}
	cand := shard.NewRing(append(ring.Up(), addr))
	noBorder := func(map[string]string) (*httpsim.Response, error) {
		return nil, errWarmupNoBorder
	}
	preseeded := 0
	for _, key := range t.activeTierKeys() {
		if cand.Owner(key) != addr {
			continue
		}
		if _, _, err := t.shards[i].domestic.Cache.Fetch(key, noBorder); err == nil {
			preseeded++
		}
	}
	t.director.MarkUp(addr)
	return preseeded
}

// retireShard drains active shard i out of the ring: the Director first
// rehashes its key range and republishes the PAC (new sessions route to
// survivors; the shard's listener stays open so in-flight sessions
// finish), then every fresh key the leaver held is pulled by its new
// owner over the sibling path — a domestic transfer, not a border
// refetch. Shard 0 never retires. Returns the number of keys handed off.
func (t *DomesticTier) retireShard(i int) int {
	ring := t.director.Ring()
	addrs := ring.Names()
	addr := addrs[i]
	if i <= 0 || ring.IsDown(addr) {
		return 0
	}
	keys := t.shards[i].domestic.Cache.Keys()
	t.director.MarkDown(addr)
	handed := 0
	for _, key := range keys {
		oi := -1
		owner := ring.Owner(key)
		for j, a := range addrs {
			if a == owner {
				oi = j
				break
			}
		}
		if oi < 0 || oi == i {
			continue
		}
		key := key
		fromLeaver := func(map[string]string) (*httpsim.Response, error) {
			return core.SiblingFetcher(net.Dial)(addr, key)
		}
		if _, _, err := t.shards[oi].domestic.Cache.FetchLocal(key, fromLeaver); err == nil {
			handed++
		}
	}
	return handed
}

// StartDomesticTier launches a sharded domestic tier of n proxies in one
// process. Shard i binds cfg's ProxyListen, WebListen, and AdminListen
// (and publishes PublicProxyAddr) with the port incremented by i;
// ephemeral ":0" listens stay ephemeral, in which case the bound
// addresses stand in for the public ones. After every shard is up the
// tier wires the shared ring: the PAC each shard serves embeds the whole
// tier with the rendezvous user→shard assignment, and the shards' caches
// peer so each shared object crosses the border once tier-wide.
//
// Multi-process tiers (one shard per machine — the production shape) use
// StartDomestic with DomesticConfig.ShardAddrs instead.
func StartDomesticTier(cfg DomesticConfig, n int) (*DomesticTier, error) {
	if n < 2 {
		return nil, fmt.Errorf("scholarcloud: StartDomesticTier of %d shard — use StartDomestic for the ordinary single proxy", n)
	}
	if cfg.CacheMB <= 0 {
		return nil, errors.New("scholarcloud: a sharded tier requires CacheMB — it exists to scale the shared content cache, and sibling fetches need one on every shard")
	}
	if len(cfg.Transports) > 0 {
		return nil, errors.New("scholarcloud: a sharded tier and Transports are mutually exclusive — the tier runs on the single blinded carrier")
	}
	if len(cfg.ShardAddrs) > 0 {
		return nil, errors.New("scholarcloud: leave ShardAddrs empty with StartDomesticTier — the tier derives the shard list from its own listeners")
	}

	t := &DomesticTier{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		sc := cfg
		var err error
		for _, f := range []*string{&sc.ProxyListen, &sc.WebListen, &sc.AdminListen, &sc.PublicProxyAddr} {
			if *f, err = addrPlus(*f, i); err != nil {
				t.Close()
				return nil, err
			}
		}
		d, err := StartDomestic(sc)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("scholarcloud: shard %d: %w", i, err)
		}
		t.shards = append(t.shards, d)
		if sc.PublicProxyAddr != "" {
			addrs[i] = sc.PublicProxyAddr
		} else {
			addrs[i] = d.ProxyAddr().String()
		}
	}

	// The shard list exists only now (ephemeral listens get their port at
	// bind time), so ring, PAC tier, and cache peering wire up after the
	// fact — the same post-start order a rolling tier restart would see.
	ring := shard.NewRing(addrs)
	t.director = shard.NewDirector(ring)
	t.director.SetClock(time.Now)
	for i, d := range t.shards {
		d.ring = ring
		d.policy.SetProxies(addrs)
		d.domestic.Cache.SetPeers(&cache.Peers{
			Self:  addrs[i],
			Owner: ring.Owner,
			Fetch: core.SiblingFetcher(net.Dial),
		})
		// Tier membership on every shard's /metrics: live shard count,
		// configured members, last-rebalance timestamp.
		t.director.Instrument(d.reg)
	}
	t.director.OnChange(func(up []string) {
		for _, d := range t.shards {
			d.policy.SetProxies(up)
		}
	})
	return t, nil
}
