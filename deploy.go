package scholarcloud

import (
	"fmt"
	"net"

	"scholarcloud/internal/core"
	"scholarcloud/internal/fleet"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/pac"
	"scholarcloud/internal/pki"
)

// RemoteConfig configures a real-socket remote proxy (the endpoint
// outside the censored network).
type RemoteConfig struct {
	// Listen is the TCP address for domestic-proxy tunnels, e.g. ":8443".
	Listen string
	// Secret is the blinding key material shared with the domestic proxy.
	Secret []byte
	// Epoch selects the blinding scheme; both proxies must agree.
	Epoch uint64
	// Name is the certificate common name presented on per-stream
	// channels (default "remote.scholarcloud.example").
	Name string
}

// RemoteProxy is a running remote proxy.
type RemoteProxy struct {
	remote *core.Remote
	ln     net.Listener
	// CACert is the DER self-signed root created at startup; ship it to
	// domestic proxies that want per-stream channel verification.
	CACert []byte
}

// Addr returns the bound listen address.
func (r *RemoteProxy) Addr() net.Addr { return r.ln.Addr() }

// Close shuts the proxy down.
func (r *RemoteProxy) Close() {
	r.remote.Close()
	r.ln.Close()
}

// StartRemote launches the remote proxy over real sockets.
func StartRemote(cfg RemoteConfig) (*RemoteProxy, error) {
	if cfg.Name == "" {
		cfg.Name = "remote.scholarcloud.example"
	}
	ca, err := pki.NewCA("ScholarCloud Deployment CA", nil)
	if err != nil {
		return nil, err
	}
	id, err := ca.Issue(cfg.Name, true)
	if err != nil {
		return nil, err
	}
	env := netx.RealEnv()
	remote := &core.Remote{
		Env: env,
		DialHost: func(host string, port int) (net.Conn, error) {
			return net.Dial("tcp", fmt.Sprintf("%s:%d", host, port))
		},
		Secret:   cfg.Secret,
		Epoch:    cfg.Epoch,
		Identity: id,
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	go remote.Serve(ln)
	return &RemoteProxy{remote: remote, ln: ln, CACert: ca.DER}, nil
}

// DomesticConfig configures a real-socket domestic proxy (the endpoint
// users' browsers are pointed at).
type DomesticConfig struct {
	// ProxyListen is the browser-facing proxy address, e.g. ":8118".
	ProxyListen string
	// WebListen serves /pac and /whitelist, e.g. ":8080".
	WebListen string
	// RemoteAddr is the remote proxy's "host:port".
	RemoteAddr string
	// RemoteAddrs lists multiple remote proxies; when more than one is
	// given the domestic proxy runs them as a managed fleet (pre-dialed
	// carrier pools, health probing, load balancing, takedown rotation).
	// Takes precedence over RemoteAddr.
	RemoteAddrs []string
	// SessionsPerRemote sizes each fleet remote's pre-dialed carrier pool
	// (zero selects the fleet default).
	SessionsPerRemote int
	// Secret/Epoch must match the remote proxy.
	Secret []byte
	Epoch  uint64
	// Whitelist is the visible list of incidentally-blocked legal domains
	// the proxy forwards; everything else is refused.
	Whitelist []string
	// PublicProxyAddr is the address written into the generated PAC file
	// (what browsers can reach), e.g. "proxy.example.com:8118".
	PublicProxyAddr string
}

// DomesticProxy is a running domestic proxy.
type DomesticProxy struct {
	domestic *core.Domestic
	pool     *fleet.Pool
	proxy    *httpsim.Proxy
	proxyLn  net.Listener
	webLn    net.Listener
	policy   *pac.Config
}

// ProxyAddr returns the browser-facing address.
func (d *DomesticProxy) ProxyAddr() net.Addr { return d.proxyLn.Addr() }

// WebAddr returns the PAC/whitelist endpoint address.
func (d *DomesticProxy) WebAddr() net.Addr { return d.webLn.Addr() }

// PAC returns the generated proxy auto-config file.
func (d *DomesticProxy) PAC() string { return d.policy.JavaScript() }

// SetWhitelist replaces the visible whitelist at runtime (the on-demand
// alteration the registration regime requires).
func (d *DomesticProxy) SetWhitelist(domains []string) { d.policy.SetDomains(domains) }

// Rotate switches the blinding epoch (coordinate with the remote).
func (d *DomesticProxy) Rotate(epoch uint64) { d.domestic.Rotate(epoch) }

// FleetStats snapshots the remote pool, or a zero value when the proxy
// runs the single-remote path.
func (d *DomesticProxy) FleetStats() fleet.Stats {
	if d.pool == nil {
		return fleet.Stats{}
	}
	return d.pool.Stats()
}

// Close shuts the proxy down.
func (d *DomesticProxy) Close() {
	if d.pool != nil {
		d.pool.Close()
	}
	d.proxy.Close()
	d.proxyLn.Close()
	d.webLn.Close()
}

// StartDomestic launches the domestic proxy over real sockets.
func StartDomestic(cfg DomesticConfig) (*DomesticProxy, error) {
	env := netx.RealEnv()
	public := cfg.PublicProxyAddr
	if public == "" {
		public = cfg.ProxyListen
	}
	policy := pac.New(public, cfg.Whitelist)
	domestic := &core.Domestic{
		Env: env,
		DialRemote: func() (net.Conn, error) {
			return net.Dial("tcp", cfg.RemoteAddr)
		},
		Secret:    cfg.Secret,
		Epoch:     cfg.Epoch,
		Whitelist: policy,
		// Per-stream channel verification requires distributing the
		// remote's CA; the blinded carrier plus shared secret already
		// authenticate the peer, so deployment defaults to accepting the
		// remote's certificate.
		RemoteName: "remote.scholarcloud.example",
	}
	var pool *fleet.Pool
	if len(cfg.RemoteAddrs) > 1 {
		var eps []fleet.Endpoint
		for _, addr := range cfg.RemoteAddrs {
			addr := addr
			eps = append(eps, fleet.Endpoint{
				Name: addr,
				Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
			})
		}
		var err error
		pool, err = fleet.New(fleet.Config{
			Env:               env,
			NewSession:        domestic.WrapCarrier,
			SessionsPerRemote: cfg.SessionsPerRemote,
		}, eps)
		if err != nil {
			return nil, err
		}
		domestic.Fleet = pool
	} else if len(cfg.RemoteAddrs) == 1 {
		addr := cfg.RemoteAddrs[0]
		domestic.DialRemote = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}

	proxyLn, err := net.Listen("tcp", cfg.ProxyListen)
	if err != nil {
		if pool != nil {
			pool.Close()
		}
		return nil, err
	}
	webLn, err := net.Listen("tcp", cfg.WebListen)
	if err != nil {
		if pool != nil {
			pool.Close()
		}
		proxyLn.Close()
		return nil, err
	}
	proxy := domestic.Proxy()
	go proxy.Serve(proxyLn)
	webSrv := &httpsim.Server{Handler: domestic.PACHandler(), Spawn: env.Spawn}
	go webSrv.Serve(webLn)
	return &DomesticProxy{
		domestic: domestic,
		pool:     pool,
		proxy:    proxy,
		proxyLn:  proxyLn,
		webLn:    webLn,
		policy:   policy,
	}, nil
}
