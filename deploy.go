package scholarcloud

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"scholarcloud/internal/cache"
	"scholarcloud/internal/carrier"
	"scholarcloud/internal/core"
	"scholarcloud/internal/fleet"
	"scholarcloud/internal/httpsim"
	"scholarcloud/internal/netx"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/pac"
	"scholarcloud/internal/pki"
)

// RemoteConfig configures a real-socket remote proxy (the endpoint
// outside the censored network).
type RemoteConfig struct {
	// Listen is the TCP address for domestic-proxy tunnels, e.g. ":8443".
	Listen string
	// AdminListen, when non-empty, serves /metrics (text key=value) and
	// /healthz on a separate operator-facing listener, e.g. "127.0.0.1:9100".
	AdminListen string
	// Secret is the blinding key material shared with the domestic proxy.
	Secret []byte
	// Epoch selects the blinding scheme; both proxies must agree.
	Epoch uint64
	// Name is the certificate common name presented on per-stream
	// channels (default "remote.scholarcloud.example").
	Name string
}

// RemoteProxy is a running remote proxy.
type RemoteProxy struct {
	remote  *core.Remote
	ln      net.Listener
	adminLn net.Listener
	// CACert is the DER self-signed root created at startup; ship it to
	// domestic proxies that want per-stream channel verification.
	CACert []byte
}

// Addr returns the bound listen address.
func (r *RemoteProxy) Addr() net.Addr { return r.ln.Addr() }

// AdminAddr returns the bound admin listener address, or nil when
// AdminListen was not configured.
func (r *RemoteProxy) AdminAddr() net.Addr {
	if r.adminLn == nil {
		return nil
	}
	return r.adminLn.Addr()
}

// Close shuts the proxy down. Nil fields are skipped so a partially
// started proxy (an error exit inside StartRemote) can reuse it as its
// cleanup path.
func (r *RemoteProxy) Close() {
	if r.remote != nil {
		r.remote.Close()
	}
	if r.ln != nil {
		r.ln.Close()
	}
	if r.adminLn != nil {
		r.adminLn.Close()
	}
}

// adminHandler serves the operator endpoints: /metrics renders the
// registry snapshot as sorted "name=value" lines; /healthz reports 200
// while healthy() says so and 503 otherwise.
func adminHandler(reg *obs.Registry, healthy func() (bool, string)) httpsim.Handler {
	m := httpsim.NewMux()
	m.HandleFunc("/metrics", func(_ *httpsim.Request, _ net.Addr) *httpsim.Response {
		var buf bytes.Buffer
		reg.Snapshot().WriteText(&buf)
		resp := httpsim.NewResponse(200, buf.Bytes())
		resp.Header["Content-Type"] = "text/plain; charset=utf-8"
		return resp
	})
	m.HandleFunc("/healthz", func(_ *httpsim.Request, _ net.Addr) *httpsim.Response {
		ok, detail := healthy()
		status := 200
		if !ok {
			status = 503
		}
		return httpsim.NewResponse(status, []byte(detail+"\n"))
	})
	return m
}

// startAdmin binds and serves the admin endpoints, returning the
// listener (nil when addr is empty).
func startAdmin(env netx.Env, addr string, reg *obs.Registry, healthy func() (bool, string)) (net.Listener, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &httpsim.Server{Handler: adminHandler(reg, healthy), Spawn: env.Spawn}
	go srv.Serve(ln)
	return ln, nil
}

// StartRemote launches the remote proxy over real sockets.
func StartRemote(cfg RemoteConfig) (*RemoteProxy, error) {
	if cfg.Name == "" {
		cfg.Name = "remote.scholarcloud.example"
	}
	ca, err := pki.NewCA("ScholarCloud Deployment CA", nil, nil)
	if err != nil {
		return nil, err
	}
	id, err := ca.Issue(cfg.Name, true)
	if err != nil {
		return nil, err
	}
	env := netx.RealEnv()
	remote := &core.Remote{
		Env: env,
		DialHost: func(host string, port int) (net.Conn, error) {
			return net.Dial("tcp", fmt.Sprintf("%s:%d", host, port))
		},
		Secret:   cfg.Secret,
		Epoch:    cfg.Epoch,
		Identity: id,
	}
	reg := obs.NewRegistry()
	remote.Instrument(reg)
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	// From here on every resource lives in p, so error exits close the
	// partial proxy as a unit rather than maintaining parallel cleanup
	// chains (an earlier version leaked remote's carrier state when the
	// admin bind failed).
	p := &RemoteProxy{remote: remote, ln: ln, CACert: ca.DER}
	adminLn, err := startAdmin(env, cfg.AdminListen, reg, func() (bool, string) { return true, "ok" })
	if err != nil {
		p.Close()
		return nil, err
	}
	p.adminLn = adminLn
	go remote.Serve(ln)
	return p, nil
}

// DomesticConfig configures a real-socket domestic proxy (the endpoint
// users' browsers are pointed at).
type DomesticConfig struct {
	// ProxyListen is the browser-facing proxy address, e.g. ":8118".
	ProxyListen string
	// WebListen serves /pac and /whitelist, e.g. ":8080".
	WebListen string
	// AdminListen, when non-empty, serves /metrics and /healthz on a
	// separate operator-facing listener, e.g. "127.0.0.1:9101".
	AdminListen string
	// RemoteAddr is the remote proxy's "host:port".
	RemoteAddr string
	// RemoteAddrs lists multiple remote proxies. Takes precedence over
	// RemoteAddr. However many remotes are configured, the domestic proxy
	// runs them as a managed fleet (pre-dialed carrier pools, health
	// probing, load balancing, takedown rotation); a single remote is
	// simply a one-member fleet.
	RemoteAddrs []string
	// SessionsPerRemote sizes each fleet remote's pre-dialed carrier pool
	// (zero selects the fleet default).
	SessionsPerRemote int
	// Secret/Epoch must match the remote proxy.
	Secret []byte
	Epoch  uint64
	// Whitelist is the visible list of incidentally-blocked legal domains
	// the proxy forwards; everything else is refused.
	Whitelist []string
	// PublicProxyAddr is the address written into the generated PAC file
	// (what browsers can reach), e.g. "proxy.example.com:8118".
	PublicProxyAddr string
	// CacheMB, when > 0, runs the proxy with a shared content cache of
	// that many MiB: whitelisted static objects are stored once and
	// served to every user without re-crossing the border, concurrent
	// identical misses coalesce into one upstream fetch, and cache
	// counters surface on the admin /metrics endpoint.
	CacheMB int
	// CacheTTL overrides the cache's heuristic freshness lifetime (zero
	// selects the cache package default, 60 s).
	CacheTTL time.Duration
	// Transports, when non-empty, replaces RemoteAddr/RemoteAddrs with an
	// escalation ladder of carrier rungs. Each entry is "name=host:port":
	// the rung's canonical transport name (see TransportNames) and the
	// address of its entry point — the remote proxy itself for the blinded
	// rung, a rendezvous gateway or tunnel daemon for the others. Rungs are
	// listed fastest (most blockable) first; the proxy prefers the lowest
	// healthy rung, escalates on sustained transport failure, and probes
	// back down when the rung below recovers.
	Transports []string
	// Resilience, when true, runs the client path under the resilience
	// policy: per-dial and per-request deadlines, exponential reconnect
	// backoff with deterministic jitter, and hedged retry/failover across
	// fleet remotes. Off preserves the paper deployment's fail-fast
	// behaviour.
	Resilience bool
	// DialTimeout/RequestTimeout override the resilience deadlines (zero
	// selects the core defaults, 3 s per dial and 30 s per request). They
	// take effect only with Resilience on.
	DialTimeout    time.Duration
	RequestTimeout time.Duration
}

// remotes reconciles RemoteAddr and RemoteAddrs.
func (cfg DomesticConfig) remotes() []string {
	if len(cfg.RemoteAddrs) > 0 {
		return cfg.RemoteAddrs
	}
	if cfg.RemoteAddr != "" {
		return []string{cfg.RemoteAddr}
	}
	return nil
}

// transportRungs parses Transports entries ("name=host:port") into
// ladder rungs over real TCP sockets, in listed order.
func transportRungs(specs []string, wrap carrier.WrapFunc) ([]carrier.Transport, error) {
	known := make(map[string]bool)
	for _, n := range carrier.Known() {
		known[n] = true
	}
	seen := make(map[string]bool)
	var rungs []carrier.Transport
	for _, spec := range specs {
		name, addr, ok := strings.Cut(spec, "=")
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("scholarcloud: transport %q: want \"name=host:port\"", spec)
		}
		if !known[name] {
			return nil, fmt.Errorf("scholarcloud: unknown transport %q (known: %s)",
				name, strings.Join(carrier.Known(), ", "))
		}
		if seen[name] {
			return nil, fmt.Errorf("scholarcloud: duplicate transport %q", name)
		}
		seen[name] = true
		rungs = append(rungs, carrier.NewStatic(name,
			func() (net.Conn, error) { return net.Dial("tcp", addr) }, wrap))
	}
	return rungs, nil
}

// DomesticProxy is a running domestic proxy.
type DomesticProxy struct {
	domestic *core.Domestic
	pool     *fleet.Pool
	ladder   *carrier.Ladder
	proxy    *httpsim.Proxy
	proxyLn  net.Listener
	webLn    net.Listener
	adminLn  net.Listener
	policy   *pac.Config
}

// ProxyAddr returns the browser-facing address.
func (d *DomesticProxy) ProxyAddr() net.Addr { return d.proxyLn.Addr() }

// WebAddr returns the PAC/whitelist endpoint address.
func (d *DomesticProxy) WebAddr() net.Addr { return d.webLn.Addr() }

// AdminAddr returns the bound admin listener address, or nil when
// AdminListen was not configured.
func (d *DomesticProxy) AdminAddr() net.Addr {
	if d.adminLn == nil {
		return nil
	}
	return d.adminLn.Addr()
}

// PAC returns the generated proxy auto-config file.
func (d *DomesticProxy) PAC() string { return d.policy.JavaScript() }

// SetWhitelist replaces the visible whitelist at runtime (the on-demand
// alteration the registration regime requires).
func (d *DomesticProxy) SetWhitelist(domains []string) { d.policy.SetDomains(domains) }

// Rotate switches the blinding epoch (coordinate with the remote).
func (d *DomesticProxy) Rotate(epoch uint64) { d.domestic.Rotate(epoch) }

// FleetStats snapshots the remote pool (every deployment runs one, even
// with a single remote).
func (d *DomesticProxy) FleetStats() fleet.Stats {
	return d.pool.Stats()
}

// ActiveTransport reports the escalation ladder's active rung, or ""
// when the proxy was not configured with Transports.
func (d *DomesticProxy) ActiveTransport() string {
	if d.ladder == nil {
		return ""
	}
	return d.ladder.ActiveName()
}

// Close shuts the proxy down. Nil fields are skipped so a partially
// started proxy (an error exit inside StartDomestic) can reuse it as its
// cleanup path.
func (d *DomesticProxy) Close() {
	if d.ladder != nil {
		d.ladder.Close()
	}
	if d.pool != nil {
		d.pool.Close()
	}
	if d.proxy != nil {
		d.proxy.Close()
	}
	if d.proxyLn != nil {
		d.proxyLn.Close()
	}
	if d.webLn != nil {
		d.webLn.Close()
	}
	if d.adminLn != nil {
		d.adminLn.Close()
	}
}

// StartDomestic launches the domestic proxy over real sockets. All
// remote configurations — one address or many — are routed through a
// managed fleet; the paper's single-remote deployment is a degenerate
// one-member pool.
func StartDomestic(cfg DomesticConfig) (*DomesticProxy, error) {
	addrs := cfg.remotes()
	if len(addrs) == 0 && len(cfg.Transports) == 0 {
		return nil, errors.New("scholarcloud: DomesticConfig needs RemoteAddr, RemoteAddrs, or Transports")
	}
	if len(addrs) > 0 && len(cfg.Transports) > 0 {
		return nil, errors.New("scholarcloud: RemoteAddrs and Transports are mutually exclusive — each transport entry names its own entry point")
	}
	env := netx.RealEnv()
	public := cfg.PublicProxyAddr
	if public == "" {
		public = cfg.ProxyListen
	}
	policy := pac.New(public, cfg.Whitelist)
	domestic := &core.Domestic{
		Env:       env,
		Secret:    cfg.Secret,
		Epoch:     cfg.Epoch,
		Whitelist: policy,
		// Per-stream channel verification requires distributing the
		// remote's CA; the blinded carrier plus shared secret already
		// authenticate the peer, so deployment defaults to accepting the
		// remote's certificate.
		RemoteName: "remote.scholarcloud.example",
	}
	if cfg.CacheMB > 0 {
		cc, err := cache.New(env, cache.Options{
			Capacity:   int64(cfg.CacheMB) << 20,
			DefaultTTL: cfg.CacheTTL,
		})
		if err != nil {
			return nil, err
		}
		domestic.Cache = cc
	}
	if cfg.Resilience {
		domestic.Resil = &core.Resilience{
			DialTimeout:    cfg.DialTimeout,
			RequestTimeout: cfg.RequestTimeout,
		}
	}
	reg := obs.NewRegistry()
	domestic.Instrument(reg)

	var (
		eps    []fleet.Endpoint
		ladder *carrier.Ladder
	)
	if len(cfg.Transports) > 0 {
		rungs, err := transportRungs(cfg.Transports, domestic.WrapCarrier)
		if err != nil {
			return nil, err
		}
		ladder = carrier.NewLadder(carrier.LadderConfig{Env: env}, rungs...)
		ladder.Instrument(reg)
		// The non-fleet fallback path dials whatever rung is active.
		domestic.DialRemote = func() (net.Conn, error) { return ladder.Active().Dial() }
		domestic.NextTransport = ladder.NextName
		for _, tr := range rungs {
			eps = append(eps, fleet.Endpoint{
				Name:      tr.Name(),
				Transport: tr.Name(),
				Dial:      tr.Dial,
			})
		}
	} else {
		domestic.DialRemote = func() (net.Conn, error) { return net.Dial("tcp", addrs[0]) }
		for _, addr := range addrs {
			addr := addr
			eps = append(eps, fleet.Endpoint{
				Name: addr,
				Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
			})
		}
	}
	fcfg := fleet.Config{
		Env:               env,
		NewSession:        domestic.WrapCarrier,
		SessionsPerRemote: cfg.SessionsPerRemote,
	}
	if ladder != nil {
		fcfg.Escalate = ladder
	}
	// A censor-blackholed transport's dials would hang the pool's warmer
	// for the full TCP retry schedule, so a ladder always bounds them.
	if cfg.Resilience || ladder != nil {
		fcfg.DialTimeout = cfg.DialTimeout
		if fcfg.DialTimeout <= 0 {
			fcfg.DialTimeout = 3 * time.Second
		}
	}
	pool, err := fleet.New(fcfg, eps)
	if err != nil {
		return nil, err
	}
	pool.Instrument(reg)
	domestic.Fleet = pool
	if ladder != nil {
		ladder.Start()
	}

	// From here on every resource lives in p, so error exits close the
	// partial proxy as a unit rather than maintaining parallel cleanup
	// chains that drift as resources are added.
	p := &DomesticProxy{domestic: domestic, pool: pool, ladder: ladder, policy: policy}
	p.proxyLn, err = net.Listen("tcp", cfg.ProxyListen)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.webLn, err = net.Listen("tcp", cfg.WebListen)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.adminLn, err = startAdmin(env, cfg.AdminListen, reg, func() (bool, string) {
		if pool.Stats().Healthy() == 0 {
			return false, "no healthy remote endpoints"
		}
		return true, "ok"
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	p.proxy = domestic.Proxy()
	go p.proxy.Serve(p.proxyLn)
	webSrv := &httpsim.Server{Handler: domestic.PACHandler(), Spawn: env.Spawn}
	go webSrv.Serve(p.webLn)
	return p, nil
}
