GO ?= go

.PHONY: check build vet fmt test race race-hot bench bench-smoke bench-json bench-compare figures determinism deprecations

## check: the full gate — build, vet, formatting, the hot-path race
## gate, the race-enabled test suite, the facade deprecation gate, and
## the parallel-harness determinism gate.
check: build vet fmt race-hot race deprecations determinism

## deprecations: the public facade must stay free of deprecated API —
## PR 5 deleted the last // Deprecated: markers; this gate keeps new
## ones from accumulating. The second grep keeps the GFW's old
## imperative mutators (SetResetStorm, SetThrottle, SetClassBlock,
## BlockIP) from coming back outside internal/gfw: censorship behaviour
## is declarative policy applied through gfw.Apply, and a stray setter
## call would bypass the provisional-verdict bookkeeping Apply does.
deprecations:
	@if grep -n "// Deprecated:" *.go; then \
		echo "deprecation gate: remove deprecated API from the public facade instead of marking it"; exit 1; \
	else \
		echo "deprecation gate: public facade carries no deprecated API"; \
	fi
	@if grep -rnE "SetResetStorm|SetThrottle|SetClassBlock|BlockIP\(" \
		--include="*.go" . | grep -v "^\./internal/gfw/"; then \
		echo "deprecation gate: mutate the GFW only through gfw.Apply(Policy)"; exit 1; \
	else \
		echo "deprecation gate: no imperative GFW mutation outside internal/gfw"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fmt: fail when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## race-hot: the race detector focused on the hot-path packages the
## event-batching/pooling work touches (vclock's timer wheel and event
## freelist, netsim's packet freelist, the cache and fleet state
## machines). Runs first in `make check` so a data race in the
## simulator core fails fast; the full `race` pass then reuses these
## packages' cached results.
race-hot:
	$(GO) test -race ./internal/vclock ./internal/netsim ./internal/cache ./internal/fleet ./internal/censor

## bench: regenerate every figure's benchmark row once.
bench:
	$(GO) test -run NONE -bench . -benchtime 1x .

## bench-smoke: run every benchmark in the repo once, as a smoke test
## (includes the obs hot-path allocation benchmarks).
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

## bench-json: run the full figure sweep and record the machine-readable
## performance report. Pinned to one core and one worker so the
## committed baseline is a stable single-core number — benchcompare
## refuses to diff reports whose gomaxprocs/seeds/full metadata
## disagree, so regenerate the baseline with this target, not by hand.
## BENCH_experiments.json (via this target and bench-compare) is the
## single source of truth for throughput claims quoted in
## ROADMAP/EXPERIMENTS.
bench-json:
	GOMAXPROCS=1 $(GO) run ./cmd/scholarbench -fig all -parallel 1 -bench-out BENCH_experiments.json > /dev/null

## bench-compare: run the full figure sweep fresh (same pinning as
## bench-json) and fail when any figure's wall time regressed >50%
## against the committed baseline.
bench-compare:
	GOMAXPROCS=1 $(GO) run ./cmd/scholarbench -fig all -parallel 1 -bench-out /tmp/scholarbench-fresh.json > /dev/null
	$(GO) run ./cmd/benchcompare -baseline BENCH_experiments.json \
		-fresh /tmp/scholarbench-fresh.json -tolerance 0.5

## determinism: the parallel harness's core guarantee — the full figure
## sweep (which includes the faults figure) must be byte-identical at
## -parallel 1 and -parallel 4, and the fault-heavy figure alone at a
## third worker count to cover odd scheduling interleavings.
determinism:
	@$(GO) build -o /tmp/scholarbench-gate ./cmd/scholarbench
	@/tmp/scholarbench-gate -fig all -parallel 1 > /tmp/scholarbench-p1.txt
	@/tmp/scholarbench-gate -fig all -parallel 4 > /tmp/scholarbench-p4.txt
	@cmp /tmp/scholarbench-p1.txt /tmp/scholarbench-p4.txt && \
		echo "determinism gate: -parallel 4 output byte-identical to -parallel 1"
	@/tmp/scholarbench-gate -fig faults -parallel 3 > /tmp/scholarbench-faults-p3.txt
	@/tmp/scholarbench-gate -fig faults -parallel 1 > /tmp/scholarbench-faults-p1.txt
	@cmp /tmp/scholarbench-faults-p1.txt /tmp/scholarbench-faults-p3.txt && \
		echo "determinism gate: -fig faults byte-identical at -parallel 1 and -parallel 3"
	@/tmp/scholarbench-gate -fig transports -parallel 1 > /tmp/scholarbench-transports-p1.txt
	@/tmp/scholarbench-gate -fig transports -parallel 3 > /tmp/scholarbench-transports-p3.txt
	@cmp /tmp/scholarbench-transports-p1.txt /tmp/scholarbench-transports-p3.txt && \
		echo "determinism gate: -fig transports byte-identical at -parallel 1 and -parallel 3"
	@/tmp/scholarbench-gate -fig censor -parallel 1 > /tmp/scholarbench-censor-p1.txt
	@/tmp/scholarbench-gate -fig censor -parallel 3 > /tmp/scholarbench-censor-p3.txt
	@cmp /tmp/scholarbench-censor-p1.txt /tmp/scholarbench-censor-p3.txt && \
		echo "determinism gate: -fig censor byte-identical at -parallel 1 and -parallel 3"
	@/tmp/scholarbench-gate -fig shards -parallel 1 > /tmp/scholarbench-shards-p1.txt
	@/tmp/scholarbench-gate -fig shards -parallel 3 > /tmp/scholarbench-shards-p3.txt
	@cmp /tmp/scholarbench-shards-p1.txt /tmp/scholarbench-shards-p3.txt && \
		echo "determinism gate: -fig shards byte-identical at -parallel 1 and -parallel 3"
	@/tmp/scholarbench-gate -fig autoscale -parallel 1 > /tmp/scholarbench-autoscale-p1.txt
	@/tmp/scholarbench-gate -fig autoscale -parallel 3 > /tmp/scholarbench-autoscale-p3.txt
	@cmp /tmp/scholarbench-autoscale-p1.txt /tmp/scholarbench-autoscale-p3.txt && \
		echo "determinism gate: -fig autoscale byte-identical at -parallel 1 and -parallel 3"
	@/tmp/scholarbench-gate -fig scale -parallel 1 > /tmp/scholarbench-scale-p1.txt
	@/tmp/scholarbench-gate -fig scale -parallel 3 > /tmp/scholarbench-scale-p3.txt
	@cmp /tmp/scholarbench-scale-p1.txt /tmp/scholarbench-scale-p3.txt && \
		echo "determinism gate: -fig scale byte-identical at -parallel 1 and -parallel 3"

## figures: regenerate the paper's figures (quick sampling).
figures:
	$(GO) run ./cmd/scholarbench
