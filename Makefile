GO ?= go

.PHONY: check build vet fmt test race bench bench-smoke figures

## check: the full gate — build, vet, formatting, and the race-enabled
## test suite.
check: build vet fmt race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fmt: fail when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate every figure's benchmark row once.
bench:
	$(GO) test -run NONE -bench . -benchtime 1x .

## bench-smoke: run every benchmark in the repo once, as a smoke test
## (includes the obs hot-path allocation benchmarks).
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

## figures: regenerate the paper's figures (quick sampling).
figures:
	$(GO) run ./cmd/scholarbench
