GO ?= go

.PHONY: check build vet fmt test race bench bench-smoke bench-json bench-compare figures determinism deprecations

## check: the full gate — build, vet, formatting, the race-enabled test
## suite, the facade deprecation gate, and the parallel-harness
## determinism gate.
check: build vet fmt race deprecations determinism

## deprecations: the public facade must stay free of deprecated API —
## PR 5 deleted the last // Deprecated: markers; this gate keeps new
## ones from accumulating.
deprecations:
	@if grep -n "// Deprecated:" *.go; then \
		echo "deprecation gate: remove deprecated API from the public facade instead of marking it"; exit 1; \
	else \
		echo "deprecation gate: public facade carries no deprecated API"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## fmt: fail when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate every figure's benchmark row once.
bench:
	$(GO) test -run NONE -bench . -benchtime 1x .

## bench-smoke: run every benchmark in the repo once, as a smoke test
## (includes the obs hot-path allocation benchmarks).
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

## bench-json: run the full figure sweep and record the machine-readable
## performance report (workers = all cores).
bench-json:
	$(GO) run ./cmd/scholarbench -fig all -bench-out BENCH_experiments.json > /dev/null

## bench-compare: run the full figure sweep fresh and fail when any
## figure's wall time regressed >50% against the committed baseline.
bench-compare:
	$(GO) run ./cmd/scholarbench -fig all -bench-out /tmp/scholarbench-fresh.json > /dev/null
	$(GO) run ./cmd/benchcompare -baseline BENCH_experiments.json \
		-fresh /tmp/scholarbench-fresh.json -tolerance 0.5

## determinism: the parallel harness's core guarantee — the full figure
## sweep (which includes the faults figure) must be byte-identical at
## -parallel 1 and -parallel 4, and the fault-heavy figure alone at a
## third worker count to cover odd scheduling interleavings.
determinism:
	@$(GO) build -o /tmp/scholarbench-gate ./cmd/scholarbench
	@/tmp/scholarbench-gate -fig all -parallel 1 > /tmp/scholarbench-p1.txt
	@/tmp/scholarbench-gate -fig all -parallel 4 > /tmp/scholarbench-p4.txt
	@cmp /tmp/scholarbench-p1.txt /tmp/scholarbench-p4.txt && \
		echo "determinism gate: -parallel 4 output byte-identical to -parallel 1"
	@/tmp/scholarbench-gate -fig faults -parallel 3 > /tmp/scholarbench-faults-p3.txt
	@/tmp/scholarbench-gate -fig faults -parallel 1 > /tmp/scholarbench-faults-p1.txt
	@cmp /tmp/scholarbench-faults-p1.txt /tmp/scholarbench-faults-p3.txt && \
		echo "determinism gate: -fig faults byte-identical at -parallel 1 and -parallel 3"
	@/tmp/scholarbench-gate -fig transports -parallel 1 > /tmp/scholarbench-transports-p1.txt
	@/tmp/scholarbench-gate -fig transports -parallel 3 > /tmp/scholarbench-transports-p3.txt
	@cmp /tmp/scholarbench-transports-p1.txt /tmp/scholarbench-transports-p3.txt && \
		echo "determinism gate: -fig transports byte-identical at -parallel 1 and -parallel 3"
	@/tmp/scholarbench-gate -fig shards -parallel 1 > /tmp/scholarbench-shards-p1.txt
	@/tmp/scholarbench-gate -fig shards -parallel 3 > /tmp/scholarbench-shards-p3.txt
	@cmp /tmp/scholarbench-shards-p1.txt /tmp/scholarbench-shards-p3.txt && \
		echo "determinism gate: -fig shards byte-identical at -parallel 1 and -parallel 3"

## figures: regenerate the paper's figures (quick sampling).
figures:
	$(GO) run ./cmd/scholarbench
