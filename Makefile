GO ?= go

.PHONY: check build vet test race bench figures

## check: the full gate — build, vet, and the race-enabled test suite.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: regenerate every figure's benchmark row once.
bench:
	$(GO) test -run NONE -bench . -benchtime 1x .

## figures: regenerate the paper's figures (quick sampling).
figures:
	$(GO) run ./cmd/scholarbench
