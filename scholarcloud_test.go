package scholarcloud

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSimulationFacade(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()

	names := sim.MethodNames()
	want := []string{"native-vpn", "openvpn", "tor", "shadowsocks", "scholarcloud"}
	if len(names) != len(want) {
		t.Fatalf("methods = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("methods = %v, want %v", names, want)
		}
	}

	first, sub, err := sim.PLT("scholarcloud", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if first.Mean <= sub.Mean {
		t.Errorf("first PLT %v not above subsequent %v", first.Mean, sub.Mean)
	}
	if sub.Mean <= 0 || sub.Mean > 5 {
		t.Errorf("subsequent PLT = %v s", sub.Mean)
	}

	rtt, err := sim.RTT("native-vpn", 4)
	if err != nil {
		t.Fatal(err)
	}
	if rtt.Mean < 0.1 || rtt.Mean > 0.4 {
		t.Errorf("VPN RTT = %v s", rtt.Mean)
	}

	if _, err := sim.PLR("direct-us", 2); err != nil {
		t.Fatal(err)
	}

	kb, err := sim.Traffic("scholarcloud", 2)
	if err != nil {
		t.Fatal(err)
	}
	if kb < 10*1024 || kb > 40*1024 {
		t.Errorf("traffic = %v bytes/access", kb)
	}
}

func TestSimulationUnknownMethod(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	_, _, err := sim.PLT("carrier-pigeon", 1, 1)
	var ue *UnknownMethodError
	if !errors.As(err, &ue) || ue.Method != "carrier-pigeon" {
		t.Errorf("err = %v", err)
	}
}

func TestSimulationScalabilityFacade(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	plt, failed, err := sim.Scalability("scholarcloud", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("%d failed visits", failed)
	}
	if plt.Mean <= 0 {
		t.Errorf("PLT = %v", plt.Mean)
	}
}

func TestSurveyFigure(t *testing.T) {
	out := SurveyFigure(1)
	if !strings.Contains(out, "371") || !strings.Contains(out, "Shadowsocks") {
		t.Errorf("survey figure = %q", out)
	}
}

func TestNoBlindingOptionPropagates(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13, NoBlinding: true})
	defer sim.Close()
	_, _, err := sim.PLT("scholarcloud", 1, 1)
	if err == nil {
		t.Error("unblinded simulation should fail against the keyword filter")
	}
}

func TestRotateBlindingFacade(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	sim.RotateBlinding(4)
	if _, _, err := sim.PLT("scholarcloud", 1, 1); err != nil {
		t.Fatalf("post-rotation PLT failed: %v", err)
	}
}

func TestSSKeepAliveOption(t *testing.T) {
	longKA := NewSimulation(Options{Seed: 13, SSKeepAlive: 10 * time.Minute})
	defer longKA.Close()
	_, subLong, err := longKA.PLT("shadowsocks", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	std := NewSimulation(Options{Seed: 13})
	defer std.Close()
	_, subStd, err := std.PLT("shadowsocks", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With a long keep-alive, subsequent visits skip re-authentication.
	if subLong.Mean >= subStd.Mean {
		t.Errorf("long keep-alive PLT %v not below default %v", subLong.Mean, subStd.Mean)
	}
}
