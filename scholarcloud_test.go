package scholarcloud

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSimulationFacade(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()

	names := sim.MethodNames()
	want := []string{"native-vpn", "openvpn", "tor", "shadowsocks", "scholarcloud"}
	if len(names) != len(want) {
		t.Fatalf("methods = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("methods = %v, want %v", names, want)
		}
	}

	plt, err := sim.MeasurePLT("scholarcloud", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plt.FirstTime.Mean <= plt.Subsequent.Mean {
		t.Errorf("first PLT %v not above subsequent %v", plt.FirstTime.Mean, plt.Subsequent.Mean)
	}
	if plt.Subsequent.Mean <= 0 || plt.Subsequent.Mean > 5 {
		t.Errorf("subsequent PLT = %v s", plt.Subsequent.Mean)
	}

	rtt, err := sim.MeasureRTT("native-vpn", 4)
	if err != nil {
		t.Fatal(err)
	}
	if rtt.RTT.Mean < 0.1 || rtt.RTT.Mean > 0.4 {
		t.Errorf("VPN RTT = %v s", rtt.RTT.Mean)
	}

	if _, err := sim.MeasurePLR("direct-us", 2); err != nil {
		t.Fatal(err)
	}

	tr, err := sim.MeasureTraffic("scholarcloud", 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BytesPerAccess < 10*1024 || tr.BytesPerAccess > 40*1024 {
		t.Errorf("traffic = %v bytes/access", tr.BytesPerAccess)
	}
}

func TestSimulationUnknownMethod(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	_, err := sim.MeasurePLT("carrier-pigeon", 1, 1)
	var ue *UnknownMethodError
	if !errors.As(err, &ue) || ue.Method != "carrier-pigeon" {
		t.Errorf("err = %v", err)
	}
}

func TestSimulationScalabilityFacade(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	p, err := sim.MeasureScalability("scholarcloud", 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Failed != 0 {
		t.Errorf("%d failed visits", p.Failed)
	}
	if p.PLT.Mean <= 0 {
		t.Errorf("PLT = %v", p.PLT.Mean)
	}
}

func TestSurveyFigure(t *testing.T) {
	out := SurveyFigure(1)
	if !strings.Contains(out, "371") || !strings.Contains(out, "Shadowsocks") {
		t.Errorf("survey figure = %q", out)
	}
}

func TestNoBlindingOptionPropagates(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13, NoBlinding: true})
	defer sim.Close()
	_, err := sim.MeasurePLT("scholarcloud", 1, 1)
	if err == nil {
		t.Error("unblinded simulation should fail against the keyword filter")
	}
}

func TestRotateBlindingFacade(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	sim.RotateBlinding(4)
	if _, err := sim.MeasurePLT("scholarcloud", 1, 1); err != nil {
		t.Fatalf("post-rotation PLT failed: %v", err)
	}
}

func TestSSKeepAliveOption(t *testing.T) {
	longKA := NewSimulation(Options{Seed: 13, SSKeepAlive: 10 * time.Minute})
	defer longKA.Close()
	longRes, err := longKA.MeasurePLT("shadowsocks", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	std := NewSimulation(Options{Seed: 13})
	defer std.Close()
	stdRes, err := std.MeasurePLT("shadowsocks", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With a long keep-alive, subsequent visits skip re-authentication.
	if longRes.Subsequent.Mean >= stdRes.Subsequent.Mean {
		t.Errorf("long keep-alive PLT %v not below default %v", longRes.Subsequent.Mean, stdRes.Subsequent.Mean)
	}
}

func TestTransportsFacade(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13, Transports: &TransportOptions{Resilience: true}})
	defer sim.Close()

	names := TransportNames()
	if len(names) != 3 || names[0] != "blinded" {
		t.Fatalf("transport names = %v", names)
	}
	stages := TransportStages()
	if len(stages) == 0 || stages[0] != "open" {
		t.Fatalf("censor stages = %v", stages)
	}

	r, err := sim.MeasureTransports("open", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.FinalRung != names[0] {
		t.Errorf("open-stage final rung = %q, want %q", r.FinalRung, names[0])
	}
	if r.Failed != 0 {
		t.Errorf("%d failed visits under an open censor", r.Failed)
	}
	if r.SuccessRate < 1 {
		t.Errorf("success rate = %v", r.SuccessRate)
	}

	if _, err := sim.MeasureTransports("carpet-bomb", 1, 1); err == nil ||
		!strings.Contains(err.Error(), "unknown censor stage") {
		t.Errorf("unknown stage err = %v", err)
	}
}

func TestMeasureTransportsNeedsOptions(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13})
	defer sim.Close()
	if _, err := sim.MeasureTransports("open", 1, 1); err == nil {
		t.Error("MeasureTransports succeeded without a Transports block")
	}
}

func TestShardsFacade(t *testing.T) {
	sim := NewSimulation(Options{
		Seed:   13,
		Cache:  &CacheOptions{CapacityMB: 16},
		Shards: &ShardOptions{Count: 4, SiblingFetch: true, RehashOnDeath: true},
	})
	defer sim.Close()

	r, err := sim.MeasureShards(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Shards != 4 || r.Clients != 8 {
		t.Errorf("shards/clients = %d/%d, want 4/8", r.Shards, r.Clients)
	}
	if r.Failed != 0 {
		t.Errorf("%d failed visits on a healthy tier", r.Failed)
	}
	if r.SiblingFetches == 0 {
		t.Error("no sibling fetches recorded — cache peering inactive")
	}
	if r.PerUserUSD <= 0 {
		t.Errorf("per-user cost = %v", r.PerUserUSD)
	}
	if len(r.Obs.Counters) == 0 {
		t.Error("result carries no observability delta")
	}
}

func TestShardKillFacade(t *testing.T) {
	sim := NewSimulation(Options{
		Seed:   13,
		Cache:  &CacheOptions{CapacityMB: 16},
		Faults: &FaultOptions{Scenario: FaultScenarios()[0], Resilience: true},
		Shards: &ShardOptions{Count: 2, SiblingFetch: true, RehashOnDeath: true},
	})
	defer sim.Close()

	r, err := sim.MeasureShardKill(6, 2, 1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Victim != 1 || r.Shards != 2 {
		t.Errorf("victim/shards = %d/%d, want 1/2", r.Victim, r.Shards)
	}
	if r.VisitsAfter == 0 {
		t.Error("no visits after the seizure")
	}
	if r.SuccessAfter < 0.99 {
		t.Errorf("post-seizure success = %v, want >= 0.99", r.SuccessAfter)
	}
}

func TestMeasureShardKillNeedsOptions(t *testing.T) {
	sim := NewSimulation(Options{Seed: 13, Cache: &CacheOptions{CapacityMB: 16}})
	defer sim.Close()
	if _, err := sim.MeasureShardKill(1, 1, 1, time.Second); err == nil {
		t.Error("MeasureShardKill succeeded without a Shards block")
	}
}

func TestShardOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"count below two", Options{Cache: &CacheOptions{CapacityMB: 16}, Shards: &ShardOptions{Count: 1}},
			"ShardOptions.Count must be at least 2"},
		{"shards without cache", Options{Shards: &ShardOptions{Count: 2}},
			"Shards requires a Cache block"},
		{"shards with fleet", Options{Cache: &CacheOptions{CapacityMB: 16}, Fleet: &FleetOptions{Remotes: 2}, Shards: &ShardOptions{Count: 2}},
			"Shards and Fleet are mutually exclusive"},
		{"shards with transports", Options{Cache: &CacheOptions{CapacityMB: 16}, Transports: &TransportOptions{}, Shards: &ShardOptions{Count: 2}},
			"Shards and Transports are mutually exclusive"},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	ok := Options{Cache: &CacheOptions{CapacityMB: 16}, Shards: &ShardOptions{Count: 2, SiblingFetch: true, RehashOnDeath: true}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid shard options rejected: %v", err)
	}
}

func TestAutoscaleFacade(t *testing.T) {
	sim := NewSimulation(Options{
		Seed:   13,
		Cache:  &CacheOptions{CapacityMB: 16},
		Shards: &ShardOptions{Count: 3, SiblingFetch: true, RehashOnDeath: true},
		Autoscale: &AutoscaleOptions{
			InitialShards: 1,
			Interval:      15 * time.Second,
			// One shard targets ~12 concurrent clients at the 20 s visit
			// cadence; the 24-client surge then wants two shards.
			Policy: AutoscalePolicy{
				TargetUtilization:   0.75,
				ShardSessionsPerSec: 0.8,
				UpAfter:             2,
				DownAfter:           3,
				UpCooldown:          30 * time.Second,
				DownCooldown:        45 * time.Second,
			},
		},
	})
	defer sim.Close()

	phases := []LoadPhase{
		{Name: "calm", Clients: 4, Rounds: 2},
		{Name: "surge", Clients: 24, Rounds: 4},
	}
	r, err := sim.MeasureAutoscale("surge", phases)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mode != "autoscaled" || r.Schedule != "surge" {
		t.Errorf("mode/schedule = %q/%q, want autoscaled/surge", r.Mode, r.Schedule)
	}
	if r.Visits != 4*2+24*4 {
		t.Errorf("visits = %d, want %d", r.Visits, 4*2+24*4)
	}
	if r.Failed != 0 {
		t.Errorf("%d failed visits on a healthy tier", r.Failed)
	}
	if r.ScaleUps == 0 || r.PeakShards <= 1 {
		t.Errorf("surge produced no scale-up (ups=%d peak=%d)", r.ScaleUps, r.PeakShards)
	}
	if r.MeanShards <= 0 || r.MeanShards > 3 {
		t.Errorf("mean shards = %v, want in (0, 3]", r.MeanShards)
	}
	if r.PerUserUSD <= 0 {
		t.Errorf("per-user cost = %v", r.PerUserUSD)
	}
	if len(r.Obs.Counters) == 0 {
		t.Error("result carries no observability delta")
	}
	if r.Obs.Gauges["autoscale.active_shards"] == 0 {
		t.Error("obs delta carries no autoscale.active_shards gauge")
	}
}

func TestAutoscaleOptionsValidation(t *testing.T) {
	shards := func() *ShardOptions {
		return &ShardOptions{Count: 3, SiblingFetch: true, RehashOnDeath: true}
	}
	cache := &CacheOptions{CapacityMB: 16}
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"autoscale without shards", Options{Cache: cache, Autoscale: &AutoscaleOptions{InitialShards: 1}},
			"Autoscale requires a Shards block"},
		{"initial below one", Options{Cache: cache, Shards: shards(), Autoscale: &AutoscaleOptions{}},
			"InitialShards must be at least 1"},
		{"initial above count", Options{Cache: cache, Shards: shards(), Autoscale: &AutoscaleOptions{InitialShards: 5}},
			"exceeds Shards.Count"},
		{"no sibling fetch", Options{Cache: cache,
			Shards:    &ShardOptions{Count: 3, RehashOnDeath: true},
			Autoscale: &AutoscaleOptions{InitialShards: 1}},
			"requires Shards.SiblingFetch"},
		{"bad policy", Options{Cache: cache, Shards: shards(),
			Autoscale: &AutoscaleOptions{InitialShards: 1, Policy: AutoscalePolicy{TargetUtilization: 2}}},
			"AutoscaleOptions.Policy"},
		{"negative interval", Options{Cache: cache, Shards: shards(),
			Autoscale: &AutoscaleOptions{InitialShards: 1, Interval: -time.Second}},
			"Interval is negative"},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	ok := Options{Cache: cache, Shards: shards(), Autoscale: &AutoscaleOptions{InitialShards: 2}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid autoscale options rejected: %v", err)
	}
}

func TestCensorFacade(t *testing.T) {
	sim := NewSimulation(Options{
		Seed:   2017,
		Censor: &CensorOptions{Profile: "regional", Resilience: true},
	})
	defer sim.Close()

	profiles := CensorProfiles()
	if len(profiles) != 3 || profiles[0] != "scripted" {
		t.Fatalf("censor profiles = %v", profiles)
	}

	r, err := sim.MeasureCensorship(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Profile != "regional" || len(r.Borders) != 2 {
		t.Fatalf("result = profile %q, %d borders", r.Profile, len(r.Borders))
	}
	if r.Visits == 0 || r.SuccessRate <= 0 {
		t.Errorf("visits = %d, success = %v", r.Visits, r.SuccessRate)
	}
	for _, b := range r.Borders {
		if b.FinalRung == "" || len(b.Survival) == 0 {
			t.Errorf("border %s missing rung/survival: %+v", b.Border, b)
		}
	}
}

func TestCensorStageOption(t *testing.T) {
	sim := NewSimulation(Options{
		Seed:       13,
		Transports: &TransportOptions{Resilience: true},
		Censor:     &CensorOptions{Stage: "open"},
	})
	defer sim.Close()
	// An empty stage argument selects the configured Censor.Stage.
	r, err := sim.MeasureTransports("", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stage != "open" {
		t.Errorf("stage = %q, want the configured %q", r.Stage, "open")
	}
}

func TestCensorOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"empty block", Options{Censor: &CensorOptions{}}, "CensorOptions is empty"},
		{"two modes", Options{Censor: &CensorOptions{Profile: "adaptive", Episode: "throttle"}}, "mutually exclusive"},
		{"unknown profile", Options{Censor: &CensorOptions{Profile: "panopticon"}}, "unknown censor profile"},
		{"unknown episode", Options{Censor: &CensorOptions{Episode: "brownout"}}, "unknown GFW episode"},
		{"stage without transports", Options{Censor: &CensorOptions{Stage: "open"}}, "requires a Transports block"},
		{"profile with transports", Options{
			Censor:     &CensorOptions{Profile: "adaptive"},
			Transports: &TransportOptions{},
		}, "mutually exclusive"},
		{"episode with faults", Options{
			Censor: &CensorOptions{Episode: "reset-storm"},
			Faults: &FaultOptions{Scenario: "loss-burst"},
		}, "mutually exclusive"},
		{"episode as fault scenario", Options{
			Faults: &FaultOptions{Scenario: "reset-storm"},
		}, "Options.Censor.Episode"},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestCensorEpisodeFacade(t *testing.T) {
	sim := NewSimulation(Options{
		Seed:   13,
		Censor: &CensorOptions{Episode: "reset-storm", Resilience: true},
	})
	defer sim.Close()
	r, err := sim.MeasureFaults(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "reset-storm" {
		t.Errorf("scenario = %q, want reset-storm", r.Scenario)
	}
	if !r.Resilience {
		t.Error("resilience flag did not propagate from the Censor block")
	}
}
