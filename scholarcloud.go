// Package scholarcloud is the public API of the ScholarCloud
// reproduction: the split-proxy system of "Accessing Google Scholar under
// Extreme Internet Censorship: A Legal Avenue" (Middleware 2017), plus the
// simulated censored internet its measurement study runs on.
//
// Two entry points:
//
//   - Simulation wraps the full world of the paper's methodology — a
//     client inside CERNET, the GFW on the border, Google Scholar and all
//     five access methods' servers — and exposes the per-figure
//     measurement runners. Every Measure* method returns a typed result
//     struct carrying the measurement's observability snapshot (the delta
//     of every layer's counters across the run). See examples/ for
//     end-to-end uses.
//
//   - Deployment runs the actual ScholarCloud proxies over real sockets:
//     a remote proxy outside the censored network and a domestic proxy
//     users' browsers point their PAC configuration at. cmd/scholarcloud
//     is the thin CLI over it.
package scholarcloud

import (
	"fmt"
	"strings"
	"time"

	"scholarcloud/internal/autoscale"
	"scholarcloud/internal/carrier"
	"scholarcloud/internal/censor"
	"scholarcloud/internal/experiments"
	"scholarcloud/internal/faults"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/survey"
)

// Simulation is a censored-internet world with all study infrastructure
// running.
type Simulation struct {
	// World exposes the underlying topology, hosts, GFW, and method
	// factories for fine-grained use.
	World *experiments.World

	// flowClients carries Options.FlowClients for flow-level measurements.
	flowClients int
	// censorStage carries Options.Censor.Stage for MeasureTransports.
	censorStage string
}

// FleetOptions backs ScholarCloud's domestic proxy with a managed pool of
// remote proxies (health-probed, load-balanced, takedown-rotated) instead
// of the paper's single remote.
type FleetOptions struct {
	// Remotes is the pool size. Endpoint 0 is the paper's primary remote;
	// the rest are extra VMs.
	Remotes int
	// SessionsPerRemote sizes each remote's pre-dialed carrier pool (zero
	// selects the fleet package default).
	SessionsPerRemote int
}

// Validate rejects nonsensical fleet configurations.
func (f *FleetOptions) Validate() error {
	if f == nil {
		return nil
	}
	if f.Remotes < 0 {
		return fmt.Errorf("scholarcloud: FleetOptions.Remotes is negative (%d)", f.Remotes)
	}
	if f.SessionsPerRemote < 0 {
		return fmt.Errorf("scholarcloud: FleetOptions.SessionsPerRemote is negative (%d)", f.SessionsPerRemote)
	}
	if f.SessionsPerRemote > 0 && f.Remotes == 0 {
		return fmt.Errorf("scholarcloud: FleetOptions.SessionsPerRemote set (%d) but Remotes is zero — sessions need a fleet to belong to", f.SessionsPerRemote)
	}
	return nil
}

// CacheOptions gives the domestic proxy a shared content cache
// (internal/cache): whitelisted static objects are stored once and served
// to every user without re-crossing the border link, and concurrent
// identical misses coalesce into one upstream fetch. Enabling the cache
// also switches ScholarCloud clients to HTTPS-gateway mode (absolute-URI
// requests the proxy can see) instead of opaque CONNECT tunnels.
type CacheOptions struct {
	// CapacityMB is the cache byte budget in MiB. Required (> 0): an
	// explicit CacheOptions block with no capacity is a configuration
	// error, not a default.
	CapacityMB int
	// TTL overrides the heuristic freshness lifetime for responses without
	// explicit cache metadata (zero selects the cache package default,
	// 60 s).
	TTL time.Duration
}

// Validate rejects nonsensical cache configurations.
func (c *CacheOptions) Validate() error {
	if c == nil {
		return nil
	}
	if c.CapacityMB <= 0 {
		return fmt.Errorf("scholarcloud: CacheOptions.CapacityMB must be positive (got %d) — omit the Cache block to run without a cache", c.CapacityMB)
	}
	if c.TTL < 0 {
		return fmt.Errorf("scholarcloud: CacheOptions.TTL is negative (%v)", c.TTL)
	}
	return nil
}

// FaultOptions arms a scripted infrastructure-fault scenario against the
// world — timed loss bursts, latency spikes, bandwidth collapse, link
// flaps, remote-proxy crashes — and optionally turns on the client
// path's resilience layer. The script executes on the virtual clock once
// a measurement starts (see Simulation.MeasureFaults). Deliberate
// censor interference (GFW reset storms and throttling campaigns) is
// not a fault: arm it through Options.Censor.Episode instead.
type FaultOptions struct {
	// Scenario names one of the scripted scenarios (faults.Scenarios()),
	// e.g. "loss-burst" or "burst-loss+crash". Required.
	Scenario string
	// Resilience enables the domestic proxy's client-path resilience
	// layer: per-dial and per-request deadlines, exponential reconnect
	// backoff with deterministic jitter, and hedged retry/failover on a
	// second fleet remote. False measures the historical fail-fast
	// behaviour under the same faults.
	Resilience bool
}

// gfwEpisodes are the scripted scenarios that model deliberate censor
// interference rather than infrastructure faults. They are armed through
// CensorOptions.Episode; FaultOptions rejects them so every censorship
// knob has exactly one home.
var gfwEpisodes = map[string]bool{"reset-storm": true, "throttle": true}

// Validate rejects nonsensical fault configurations.
func (f *FaultOptions) Validate() error {
	if f == nil {
		return nil
	}
	if f.Scenario == "" {
		return fmt.Errorf("scholarcloud: FaultOptions.Scenario is empty — omit the Faults block to run the healthy world (known scenarios: %s)", strings.Join(faults.Scenarios(), ", "))
	}
	if gfwEpisodes[f.Scenario] {
		return fmt.Errorf("scholarcloud: scenario %q is a deliberate GFW interference episode, not an infrastructure fault — arm it through Options.Censor.Episode instead", f.Scenario)
	}
	if _, ok := faults.Script(f.Scenario); !ok {
		return fmt.Errorf("scholarcloud: unknown fault scenario %q (known scenarios: %s)", f.Scenario, strings.Join(faults.Scenarios(), ", "))
	}
	return nil
}

// FaultScenarios lists the scripted fault scenarios FaultOptions.Scenario
// accepts, in figure order.
func FaultScenarios() []string { return faults.Scenarios() }

// TransportOptions runs ScholarCloud's border hop over the
// carrier-transport escalation ladder (internal/carrier) instead of a
// single blinded carrier: the blinded TCP carrier, a serverless
// rendezvous pool of ephemeral per-request endpoints, and a covert DNS
// tunnel, ordered fastest (most blockable) first. The ladder prefers
// the lowest rung, escalates on sustained transport failure, and probes
// its way back down when the censor relents.
type TransportOptions struct {
	// Rungs names the carrier transports in ladder order. Empty selects
	// the full ladder (TransportNames()).
	Rungs []string
	// Resilience enables the client path's resilience layer; hedged
	// retries aim at the next rung up the ladder.
	Resilience bool
}

// Validate rejects nonsensical transport configurations.
func (t *TransportOptions) Validate() error {
	if t == nil {
		return nil
	}
	known := make(map[string]bool)
	for _, name := range carrier.Known() {
		known[name] = true
	}
	seen := make(map[string]bool)
	for _, r := range t.Rungs {
		if !known[r] {
			return fmt.Errorf("scholarcloud: unknown carrier transport %q (known transports: %s)",
				r, strings.Join(carrier.Known(), ", "))
		}
		if seen[r] {
			return fmt.Errorf("scholarcloud: carrier transport %q listed twice in TransportOptions.Rungs", r)
		}
		seen[r] = true
	}
	return nil
}

// TransportNames lists the carrier transports of the escalation ladder,
// fastest (most blockable) first.
func TransportNames() []string { return carrier.Known() }

// TransportStages lists the censor escalation stages
// Simulation.MeasureTransports accepts, mildest first.
func TransportStages() []string { return experiments.TransportStageNames() }

// CensorOptions is the single home for every censorship knob the facade
// exposes — what the censor does, rather than what the deployment runs.
//
// Exactly one of the three modes is set:
//
//   - Profile builds a multi-border world (CensorProfiles()): each
//     border crosses its own firewall with independent policy state, on
//     a scripted schedule or under an adaptive controller that watches
//     that border's flow classifications and escalates region by region.
//     Measured with Simulation.MeasureCensorship.
//
//   - Stage pins the single-border transport world to one fixed censor
//     escalation stage (TransportStages()); requires a Transports block.
//     It is the default stage of Simulation.MeasureTransports, which
//     previously could only be chosen call by call.
//
//   - Episode arms a deliberate GFW interference episode — "reset-storm"
//     or "throttle" — against the single border, measured with
//     Simulation.MeasureFaults. These two scripts were historically
//     spelled as fault scenarios in Options.Faults; they are censor
//     behaviour, so they live here now and FaultOptions rejects them.
type CensorOptions struct {
	// Profile names a multi-border censorship regime (CensorProfiles()).
	Profile string
	// Stage names a fixed censor escalation stage for the transport
	// ladder world (TransportStages()).
	Stage string
	// Episode names a GFW interference episode: "reset-storm" or
	// "throttle".
	Episode string
	// Resilience enables the client path's resilience layer, exactly as
	// FaultOptions.Resilience and TransportOptions.Resilience do.
	Resilience bool
}

// Validate rejects nonsensical censor configurations.
func (c *CensorOptions) Validate() error {
	if c == nil {
		return nil
	}
	set := 0
	for _, v := range []string{c.Profile, c.Stage, c.Episode} {
		if v != "" {
			set++
		}
	}
	if set == 0 {
		return fmt.Errorf("scholarcloud: CensorOptions is empty — set Profile, Stage or Episode, or omit the Censor block for the standing censor")
	}
	if set > 1 {
		return fmt.Errorf("scholarcloud: CensorOptions.Profile, Stage and Episode are mutually exclusive — a multi-border profile schedules its own stages and episodes")
	}
	if c.Profile != "" {
		if _, ok := censor.ProfileByName(c.Profile); !ok {
			return fmt.Errorf("scholarcloud: unknown censor profile %q (known profiles: %s)",
				c.Profile, strings.Join(censor.ProfileNames(), ", "))
		}
	}
	if c.Stage != "" {
		if _, ok := experiments.TransportStageByName(c.Stage); !ok {
			return fmt.Errorf("scholarcloud: unknown censor stage %q (known stages: %s)",
				c.Stage, strings.Join(experiments.TransportStageNames(), ", "))
		}
	}
	if c.Episode != "" && !gfwEpisodes[c.Episode] {
		return fmt.Errorf("scholarcloud: unknown GFW episode %q (known episodes: reset-storm, throttle)", c.Episode)
	}
	return nil
}

// CensorProfiles lists the multi-border censorship regimes
// CensorOptions.Profile accepts, in declaration order.
func CensorProfiles() []string { return censor.ProfileNames() }

// ShardOptions splits the domestic tier horizontally: Count proxy shards
// stand inside the censored network, the PAC file hashes each user onto
// one of them (rendezvous hashing over myIpAddress(), rendered into the
// PAC JavaScript so real browsers route exactly like the simulator), and
// the shards peer their content caches — a shard that misses on a static
// object asks the key's owning sibling before crossing the border, so
// the tier fetches each shared object across the border once no matter
// how many shards serve it. Requires a Cache block: the sharded tier
// exists to scale the shared cache, and without one the shards would
// just multiply border traffic.
type ShardOptions struct {
	// Count is the number of domestic proxy shards. Must be >= 2 — a
	// one-shard tier is the ordinary single proxy; omit the block for
	// that.
	Count int
	// SiblingFetch enables ICP/CARP-style cache peering: on a local miss
	// for a key another shard owns, fetch from that sibling instead of
	// crossing the border. Off, each shard fills its cache independently.
	SiblingFetch bool
	// RehashOnDeath re-assigns a dead shard's key range to the survivors
	// (consistent hashing moves only the dead shard's keys). Off, a dead
	// shard's keys keep their owner and sibling fetches to it fall back
	// to border fetches.
	RehashOnDeath bool
}

// Validate rejects nonsensical shard configurations.
func (s *ShardOptions) Validate() error {
	if s == nil {
		return nil
	}
	if s.Count < 2 {
		return fmt.Errorf("scholarcloud: ShardOptions.Count must be at least 2 (got %d) — a one-shard tier is the ordinary single proxy, so omit the Shards block instead", s.Count)
	}
	return nil
}

// AutoscalePolicy tunes the autoscaler's target-tracking thresholds,
// hysteresis, and cooldown windows. Zero fields take the autoscale
// package defaults.
type AutoscalePolicy = autoscale.Policy

// AutoscaleOptions turns the sharded domestic tier over to a
// metrics-driven autoscaler (internal/autoscale): all Shards.Count
// shards are provisioned, InitialShards start active, and a control
// loop sampling the tier's metrics — offered load, page-load p99, cache
// hit rate — admits warm standbys or retires actives through the shard
// Director mid-run. A joining shard pre-seeds the cache keys it is
// about to own from its peers over the sibling-fetch path before
// entering the ring, so scale-ups do not stampede the border; a
// retiring shard drains its keys to the survivors and keeps its
// listener open until in-flight sessions finish. Requires a Shards
// block with SiblingFetch and RehashOnDeath.
type AutoscaleOptions struct {
	// InitialShards is how many of the Shards.Count provisioned shards
	// start active; the rest park as warm standbys the controller can
	// admit. Must be >= 1 and <= Shards.Count.
	InitialShards int
	// Interval is the control loop's sampling period (zero selects the
	// 15 s default).
	Interval time.Duration
	// Policy tunes thresholds, hysteresis, and cooldowns. Zero fields
	// take the package defaults; MinShards defaults to InitialShards and
	// MaxShards to Shards.Count.
	Policy AutoscalePolicy
}

// Validate rejects nonsensical autoscale configurations.
func (a *AutoscaleOptions) Validate() error {
	if a == nil {
		return nil
	}
	if a.InitialShards < 1 {
		return fmt.Errorf("scholarcloud: AutoscaleOptions.InitialShards must be at least 1 (got %d)", a.InitialShards)
	}
	if a.Interval < 0 {
		return fmt.Errorf("scholarcloud: AutoscaleOptions.Interval is negative (%v)", a.Interval)
	}
	if err := a.Policy.Validate(); err != nil {
		return fmt.Errorf("scholarcloud: AutoscaleOptions.Policy: %w", err)
	}
	return nil
}

// Options configures a Simulation.
type Options struct {
	// Seed drives every stochastic decision; equal seeds reproduce equal
	// measurements. Zero selects the default (2017).
	Seed uint64
	// DisableGFW builds an uncensored world.
	DisableGFW bool
	// NoBlinding disables ScholarCloud's message blinding (ablation).
	NoBlinding bool
	// SSKeepAlive overrides Shadowsocks' 10s keep-alive (ablation).
	SSKeepAlive time.Duration
	// Fleet, when non-nil with Remotes > 0, runs the domestic proxy
	// against a managed remote-proxy pool.
	Fleet *FleetOptions
	// Cache, when non-nil, runs the domestic proxy with a shared content
	// cache of Cache.CapacityMB MiB.
	Cache *CacheOptions
	// Faults, when non-nil, arms the named fault scenario (and,
	// optionally, the client resilience layer). Nil keeps the healthy
	// world and every figure byte-identical to the fault-free build.
	Faults *FaultOptions
	// Transports, when non-nil, runs the border hop over the carrier
	// escalation ladder. Mutually exclusive with Fleet (the ladder
	// manages its own endpoint pool). Nil keeps every figure
	// byte-identical to the single-carrier build.
	Transports *TransportOptions
	// Censor, when non-nil, puts the censor itself under test: a
	// multi-border Profile (measured with MeasureCensorship), a fixed
	// escalation Stage for the transport world, or a GFW interference
	// Episode (measured with MeasureFaults). Nil keeps the standing
	// censor and every figure byte-identical to it.
	Censor *CensorOptions
	// Shards, when non-nil, splits the domestic tier into Shards.Count
	// PAC-assigned proxy shards with peered content caches. Requires
	// Cache; mutually exclusive with Fleet and Transports. Nil keeps the
	// single domestic proxy and every figure byte-identical to it.
	Shards *ShardOptions
	// Autoscale, when non-nil, starts the sharded domestic tier with
	// Autoscale.InitialShards active and lets a metrics-driven control
	// loop grow it toward Shards.Count (and shrink it back) mid-run.
	// Requires Shards with SiblingFetch and RehashOnDeath. Nil keeps the
	// whole tier active and every figure byte-identical to it.
	Autoscale *AutoscaleOptions
	// FlowClients, when > 0, is the cohort size for flow-level
	// measurements: MeasureFlowScalability models that many identical
	// clients as calibrated fluid load with a handful of sampled
	// packet-level clients riding it. Zero leaves flow mode off (calling
	// MeasureFlowScalability then errors); packet-level measurements are
	// unaffected either way.
	FlowClients int
}

// Validate walks every nested option block (Fleet, Cache, Faults,
// Transports, Shards) and returns the first configuration error. Each
// block's Validate is nil-receiver safe, so the walk itself needs no
// per-block dispatch.
func (o Options) Validate() error {
	for _, block := range []interface{ Validate() error }{
		o.Fleet,
		o.Cache,
		o.Faults,
		o.Transports,
		o.Censor,
		o.Shards,
		o.Autoscale,
	} {
		if err := block.Validate(); err != nil {
			return err
		}
	}
	if o.Transports != nil && o.Fleet != nil {
		return fmt.Errorf("scholarcloud: Transports and Fleet are mutually exclusive — the transport ladder manages its own endpoint pool")
	}
	if c := o.Censor; c != nil {
		if c.Profile != "" {
			for _, conflict := range []struct {
				name    string
				present bool
			}{
				{"Fleet", o.Fleet != nil},
				{"Cache", o.Cache != nil},
				{"Faults", o.Faults != nil},
				{"Transports", o.Transports != nil},
				{"Shards", o.Shards != nil},
			} {
				if conflict.present {
					return fmt.Errorf("scholarcloud: Censor.Profile and %s are mutually exclusive — every border of a multi-border world runs its own full deployment (transport ladder, resilience) and its own censor schedule", conflict.name)
				}
			}
		}
		if c.Stage != "" && o.Transports == nil {
			return fmt.Errorf("scholarcloud: Censor.Stage requires a Transports block — a fixed escalation stage is measured against the carrier ladder")
		}
		if c.Episode != "" && o.Faults != nil {
			return fmt.Errorf("scholarcloud: Censor.Episode and Faults are mutually exclusive — run the GFW episode and the infrastructure faults in separate worlds so each measurement isolates one cause")
		}
	}
	if o.Shards != nil {
		if o.Cache == nil {
			return fmt.Errorf("scholarcloud: Shards requires a Cache block — the sharded tier exists to scale the shared content cache, and without one the extra shards would only multiply border traffic")
		}
		if o.Fleet != nil {
			return fmt.Errorf("scholarcloud: Shards and Fleet are mutually exclusive — shard the domestic tier or pool the remote tier, not both in one world")
		}
		if o.Transports != nil {
			return fmt.Errorf("scholarcloud: Shards and Transports are mutually exclusive — the sharded tier runs on the single blinded carrier")
		}
	}
	if o.Autoscale != nil {
		if o.Shards == nil {
			return fmt.Errorf("scholarcloud: Autoscale requires a Shards block — the autoscaler grows and shrinks the sharded domestic tier")
		}
		if o.Autoscale.InitialShards > o.Shards.Count {
			return fmt.Errorf("scholarcloud: AutoscaleOptions.InitialShards (%d) exceeds Shards.Count (%d) — the tier cannot start larger than it is provisioned",
				o.Autoscale.InitialShards, o.Shards.Count)
		}
		if !o.Shards.SiblingFetch || !o.Shards.RehashOnDeath {
			return fmt.Errorf("scholarcloud: Autoscale requires Shards.SiblingFetch and Shards.RehashOnDeath — warm-up and drain move cache keys over the sibling path, and standbys must own no keys")
		}
	}
	if o.FlowClients < 0 {
		return fmt.Errorf("scholarcloud: Options.FlowClients is negative (%d) — set a cohort size, or zero to leave flow mode off", o.FlowClients)
	}
	return nil
}

// NewSimulation builds and starts the world. Close it when done. Invalid
// options (see Options.Validate) panic with a descriptive error, matching
// the construct-or-die contract of the underlying world.
func NewSimulation(opts Options) *Simulation {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	cfg := experiments.Config{
		Seed:                   opts.Seed,
		DisableGFW:             opts.DisableGFW,
		ScholarCloudNoBlinding: opts.NoBlinding,
		SSKeepAlive:            opts.SSKeepAlive,
	}
	if f := opts.Fleet; f != nil {
		cfg.FleetRemotes = f.Remotes
		cfg.FleetSessionsPerRemote = f.SessionsPerRemote
	}
	if c := opts.Cache; c != nil {
		cfg.CacheMB = c.CapacityMB
		cfg.CacheTTL = c.TTL
	}
	if f := opts.Faults; f != nil {
		cfg.FaultScenario = f.Scenario
		cfg.Resilience = f.Resilience
	}
	if t := opts.Transports; t != nil {
		cfg.Transports = t.Rungs
		if len(cfg.Transports) == 0 {
			cfg.Transports = carrier.Known()
		}
		cfg.Resilience = cfg.Resilience || t.Resilience
	}
	censorStage := ""
	if c := opts.Censor; c != nil {
		if c.Profile != "" {
			p, _ := censor.ProfileByName(c.Profile)
			cfg.Censor = &p
		}
		if c.Episode != "" {
			// A GFW episode rides the fault scheduler's script machinery;
			// Validate already guaranteed no Faults block competes for it.
			cfg.FaultScenario = c.Episode
		}
		censorStage = c.Stage
		cfg.Resilience = cfg.Resilience || c.Resilience
	}
	if sh := opts.Shards; sh != nil {
		cfg.Shards = sh.Count
		cfg.ShardSiblingFetch = sh.SiblingFetch
		cfg.ShardRehashOnDeath = sh.RehashOnDeath
	}
	if a := opts.Autoscale; a != nil {
		cfg.AutoscaleInitial = a.InitialShards
		cfg.AutoscalePolicy = a.Policy
		cfg.AutoscaleInterval = a.Interval
	}
	return &Simulation{World: experiments.NewWorld(cfg), flowClients: opts.FlowClients, censorStage: censorStage}
}

// Close stops the simulation.
func (s *Simulation) Close() { s.World.Close() }

// MethodNames lists the access methods under study, in the paper's order.
func (s *Simulation) MethodNames() []string {
	fs := s.World.Methods()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}

// Summary is a statistics summary re-exported for API users.
type Summary = metrics.Summary

// Snapshot returns the current cumulative state of every layer's metrics
// (network, censor, tunnel core, fleet, browser).
func (s *Simulation) Snapshot() obs.Snapshot { return s.World.Obs.Snapshot() }

// PLTResult is one method's Fig. 5a datapoint: first-time and subsequent
// page load time summaries, plus the observability delta of the run.
type PLTResult struct {
	Method     string
	FirstTime  Summary // seconds
	Subsequent Summary // seconds
	Obs        obs.Snapshot
}

// RTTResult is one method's Fig. 5b datapoint.
type RTTResult struct {
	Method string
	RTT    Summary // seconds
	Obs    obs.Snapshot
}

// PLRResult is one method's Fig. 5c datapoint.
type PLRResult struct {
	Method string
	PLR    float64
	// Packets is the sample size behind the estimate.
	Packets int64
	Obs     obs.Snapshot
}

// TrafficResult is one method's Fig. 6a datapoint.
type TrafficResult struct {
	Method         string
	BytesPerAccess float64
	Obs            obs.Snapshot
}

// ScalabilityResult is one (method, concurrency) cell of Fig. 7.
type ScalabilityResult struct {
	Method  string
	Clients int
	PLT     Summary // seconds
	Failed  int
	Obs     obs.Snapshot
}

// FlowResult is a flow-level cohort measurement: a cohort of
// Options.FlowClients identical clients modeled as calibrated fluid load,
// with `Sampled` real packet-level clients riding it for tracing.
type FlowResult struct {
	Method  string
	Clients int // cohort size
	Sampled int // packet-level clients sampled from the cohort
	// PLT and Failed summarize the sampled clients' visits under the
	// cohort's load.
	PLT    Summary // seconds
	Failed int
	// Analytic offered-load fractions the cohort imposes on the border
	// link and the proxy CPU tiers (1.0 = at capacity).
	BorderUtilization   float64
	RemoteUtilization   float64
	DomesticUtilization float64
	// RequiredRemotes is the analytic floor on remote-proxy count needed
	// to keep the remote tier under full utilization at this cohort size.
	RequiredRemotes int
	// Saturated reports that some resource's offered load is >= 1.
	Saturated bool
	// BorderBytes totals the cohort's border traffic for the session
	// (measured for sampled clients, demand-scaled for the fluid rest);
	// BytesPerClient divides it by the cohort size.
	BorderBytes    int64
	BytesPerClient float64
	Obs            obs.Snapshot
}

// PartialError is returned by Measure* methods whose run failed partway:
// it wraps the underlying failure and carries the observability delta
// accumulated up to it, so a caller can still see how far the run got
// (packets sent, resets taken, retries burned) before it died.
type PartialError struct {
	Err error
	// Obs is the metrics delta from the measurement's start to the
	// moment of failure.
	Obs obs.Snapshot
}

// Error implements error.
func (e *PartialError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *PartialError) Unwrap() error { return e.Err }

// obsResult is implemented by every Measure* result type: they all carry
// the run's observability delta. It is what lets measureInto stamp the
// snapshot without per-method plumbing.
type obsResult interface{ setObs(obs.Snapshot) }

func (r *PLTResult) setObs(sn obs.Snapshot)         { r.Obs = sn }
func (r *RTTResult) setObs(sn obs.Snapshot)         { r.Obs = sn }
func (r *PLRResult) setObs(sn obs.Snapshot)         { r.Obs = sn }
func (r *TrafficResult) setObs(sn obs.Snapshot)     { r.Obs = sn }
func (r *ScalabilityResult) setObs(sn obs.Snapshot) { r.Obs = sn }
func (r *FlowResult) setObs(sn obs.Snapshot)        { r.Obs = sn }

// measureInto is the shared shell of every Measure* method: it brackets
// the world measurement `run` between two registry snapshots, folds the
// world's result into the facade result via `fill`, stamps the obs delta,
// and returns res. A mid-run failure returns a PartialError carrying the
// delta accumulated up to it instead of discarding it.
func measureInto[T any, R obsResult](s *Simulation, res R, run func() (T, error), fill func(T)) (R, error) {
	var zero R
	before := s.World.Obs.Snapshot()
	r, err := run()
	if err != nil {
		return zero, &PartialError{Err: err, Obs: s.World.Obs.Snapshot().Sub(before)}
	}
	fill(r)
	res.setObs(s.World.Obs.Snapshot().Sub(before))
	return res, nil
}

// MeasurePLT measures first-time and subsequent page load times for the
// named method (Fig. 5a's datapoints).
func (s *Simulation) MeasurePLT(method string, firstRuns, subsequent int) (*PLTResult, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &PLTResult{Method: method}
	return measureInto(s, res,
		func() (*experiments.PLTResult, error) { return s.World.MeasurePLT(f, firstRuns, subsequent) },
		func(r *experiments.PLTResult) { res.FirstTime, res.Subsequent = r.FirstTime, r.Subsequent })
}

// MeasureRTT measures tunneled round-trip time (Fig. 5b).
func (s *Simulation) MeasureRTT(method string, probes int) (*RTTResult, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &RTTResult{Method: method}
	return measureInto(s, res,
		func() (*experiments.RTTResult, error) { return s.World.MeasureRTT(f, probes) },
		func(r *experiments.RTTResult) { res.RTT = r.RTT })
}

// MeasurePLR measures the packet loss rate over the visit workload
// (Fig. 5c).
func (s *Simulation) MeasurePLR(method string, visits int) (*PLRResult, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &PLRResult{Method: method}
	return measureInto(s, res,
		func() (*experiments.PLRResult, error) { return s.World.MeasurePLR(f, visits) },
		func(r *experiments.PLRResult) { res.PLR, res.Packets = r.PLR, r.Packets })
}

// MeasureTraffic measures per-access client bytes (Fig. 6a).
func (s *Simulation) MeasureTraffic(method string, visits int) (*TrafficResult, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &TrafficResult{Method: method}
	return measureInto(s, res,
		func() (*experiments.TrafficResult, error) { return s.World.MeasureTraffic(f, visits) },
		func(r *experiments.TrafficResult) { res.BytesPerAccess = r.BytesPerAccess })
}

// MeasureScalability measures mean PLT under n concurrent clients
// (Fig. 7).
func (s *Simulation) MeasureScalability(method string, clients, rounds int) (*ScalabilityResult, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &ScalabilityResult{Method: method, Clients: clients}
	return measureInto(s, res,
		func() (*experiments.ScalabilityPoint, error) {
			return s.World.MeasureScalability(f, clients, rounds)
		},
		func(p *experiments.ScalabilityPoint) { res.PLT, res.Failed = p.PLT, p.Failed })
}

// MeasureFlowScalability measures the named method under a flow-level
// cohort of Options.FlowClients identical clients: `sampled` of them run
// as real packet-level clients over `rounds` visit rounds, the rest as
// fluid load calibrated from a marginal client's measured demand. The
// simulation must have been built with FlowClients > 0.
func (s *Simulation) MeasureFlowScalability(method string, rounds, sampled int) (*FlowResult, error) {
	if s.flowClients <= 0 {
		return nil, fmt.Errorf("scholarcloud: MeasureFlowScalability needs Options.FlowClients > 0")
	}
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &FlowResult{Method: method}
	return measureInto(s, res,
		func() (*experiments.FlowPoint, error) {
			return s.World.MeasureFlowScalability(f, s.flowClients, rounds, sampled)
		},
		func(p *experiments.FlowPoint) {
			res.Clients, res.Sampled = p.Clients, p.Sampled
			res.PLT, res.Failed = p.PLT, p.Failed
			res.BorderUtilization = p.BorderUtilization
			res.RemoteUtilization = p.RemoteUtilization
			res.DomesticUtilization = p.DomesticUtilization
			res.RequiredRemotes, res.Saturated = p.RequiredRemotes, p.Saturated
			res.BorderBytes, res.BytesPerClient = p.BorderBytes, p.BytesPerClient
		})
}

// FaultsResult is a faults-under-load datapoint: ScholarCloud page loads
// measured while the armed fault scenario executed.
type FaultsResult struct {
	Scenario   string
	Resilience bool
	Clients    int
	PLT        Summary // seconds, successful visits only
	Visits     int
	Failed     int
	// SuccessRate is the fraction of page loads that completed.
	SuccessRate float64
	Obs         obs.Snapshot
}

func (r *FaultsResult) setObs(sn obs.Snapshot) { r.Obs = sn }

// MeasureFaults runs `clients` concurrent ScholarCloud clients for
// `rounds` visit rounds while the script configured through
// Options.Faults (infrastructure faults) or Options.Censor.Episode (GFW
// interference) executes on the virtual clock. The simulation must have
// been built with one of those blocks.
func (s *Simulation) MeasureFaults(clients, rounds int) (*FaultsResult, error) {
	if s.World.Cfg.FaultScenario == "" {
		return nil, fmt.Errorf("scholarcloud: MeasureFaults needs Options.Faults or Options.Censor.Episode (known scenarios: %s)", strings.Join(faults.Scenarios(), ", "))
	}
	res := &FaultsResult{}
	return measureInto(s, res,
		func() (*experiments.FaultsResult, error) { return s.World.MeasureFaults(clients, rounds) },
		func(r *experiments.FaultsResult) {
			res.Scenario, res.Resilience = r.Scenario, r.Resilience
			res.Clients, res.PLT = r.Clients, r.PLT
			res.Visits, res.Failed = r.Visits, r.Failed
			res.SuccessRate = r.SuccessRate()
		})
}

// TransportsResult is a transport-ladder datapoint: ScholarCloud page
// loads measured under one censor stage, with where the escalation walk
// settled and what the serverless fallback cost.
type TransportsResult struct {
	Stage   string
	Clients int
	// FinalRung is the ladder's active transport once the load completed.
	FinalRung   string
	Escalations int64
	// Invocations counts metered rendezvous endpoint invocations (cold
	// starts); InvocationCostUSD extrapolates them to the paper's daily
	// workload under serverless pricing.
	Invocations       int64
	InvocationCostUSD float64
	PLT               Summary // seconds, successful visits only
	Visits            int
	Failed            int
	// SuccessRate is the fraction of page loads that completed.
	SuccessRate float64
	Obs         obs.Snapshot
}

func (r *TransportsResult) setObs(sn obs.Snapshot) { r.Obs = sn }

// MeasureTransports arms the named censor stage (TransportStages()), then
// runs `clients` concurrent ScholarCloud clients for `rounds` visit
// rounds against the carrier escalation ladder. The simulation must have
// been built with a Transports block. An empty stage selects the stage
// configured through Options.Censor.Stage.
func (s *Simulation) MeasureTransports(stage string, clients, rounds int) (*TransportsResult, error) {
	if len(s.World.Cfg.Transports) == 0 {
		return nil, fmt.Errorf("scholarcloud: MeasureTransports needs Options.Transports")
	}
	if stage == "" {
		if s.censorStage == "" {
			return nil, fmt.Errorf("scholarcloud: no censor stage — pass one to MeasureTransports or set Options.Censor.Stage (known stages: %s)",
				strings.Join(experiments.TransportStageNames(), ", "))
		}
		stage = s.censorStage
	}
	st, ok := experiments.TransportStageByName(stage)
	if !ok {
		return nil, fmt.Errorf("scholarcloud: unknown censor stage %q (known stages: %s)",
			stage, strings.Join(experiments.TransportStageNames(), ", "))
	}
	res := &TransportsResult{}
	return measureInto(s, res,
		func() (*experiments.TransportsResult, error) {
			return s.World.MeasureTransports(st, clients, rounds)
		},
		func(r *experiments.TransportsResult) {
			res.Stage, res.Clients = r.Stage, r.Clients
			res.FinalRung, res.Escalations = r.FinalRung, r.Escalations
			res.Invocations, res.InvocationCostUSD = r.Invocations, r.InvocationCostUSD()
			res.PLT, res.Visits, res.Failed = r.PLT, r.Visits, r.Failed
			res.SuccessRate = r.SuccessRate()
		})
}

// CensorEvent is one entry of a border's escalation timeline: a scripted
// stage firing, an adaptive escalation or relaxation, a traffic class
// fingerprinted, a confirmed server blackholed, or the client cohort
// rotating transports in response.
type CensorEvent = censor.Event

// RungSurvival is one transport rung's share of a border's page loads —
// the per-transport survival curve.
type RungSurvival = experiments.RungSurvival

// BorderResult is one border's outcome under a multi-border censorship
// profile: where its censor's escalation settled, where its client
// cohort's transport ladder settled, and what the crackdown cost.
type BorderResult struct {
	Border string
	// FinalLevel is the adaptive controller's final escalation rung
	// ("static" for scripted or lenient borders).
	FinalLevel string
	// FinalRung is the ladder's active transport once the load completed.
	FinalRung string
	// Escalations and Recoveries count the cohort's ladder moves.
	Escalations int64
	Recoveries  int64
	PLT         Summary // seconds, successful visits only
	Visits      int
	Failed      int
	// SuccessRate is the fraction of this border's page loads that
	// completed.
	SuccessRate float64
	// Survival breaks the visits out per active transport, in ladder
	// order.
	Survival []RungSurvival
	// Timeline is the border's merged escalation history, in onset order.
	Timeline []CensorEvent
}

// CensorshipResult is a multi-border censorship datapoint: every border
// of the armed profile measured under the same concurrent load.
type CensorshipResult struct {
	Profile string
	// Clients is the per-border concurrent cohort size.
	Clients int
	Rounds  int
	Visits  int
	Failed  int
	// SuccessRate is the whole-world fraction of page loads that
	// completed.
	SuccessRate float64
	Borders     []BorderResult
	Obs         obs.Snapshot
}

func (r *CensorshipResult) setObs(sn obs.Snapshot) { r.Obs = sn }

// MeasureCensorship arms the multi-border profile configured through
// Options.Censor.Profile, then runs `clients` concurrent ScholarCloud
// clients per border for `rounds` visit rounds while every border's
// censor follows its own schedule or adaptive controller. The simulation
// must have been built with a Censor block naming a Profile.
func (s *Simulation) MeasureCensorship(clients, rounds int) (*CensorshipResult, error) {
	if s.World.Cfg.Censor == nil {
		return nil, fmt.Errorf("scholarcloud: MeasureCensorship needs Options.Censor.Profile (known profiles: %s)",
			strings.Join(censor.ProfileNames(), ", "))
	}
	res := &CensorshipResult{}
	return measureInto(s, res,
		func() (*experiments.CensorPoint, error) { return s.World.MeasureCensorship(clients, rounds) },
		func(p *experiments.CensorPoint) {
			res.Profile, res.Clients, res.Rounds = p.Profile, p.Clients, p.Rounds
			res.SuccessRate = p.SuccessRate()
			for _, b := range p.Borders {
				res.Visits += b.Visits
				res.Failed += b.Failed
				res.Borders = append(res.Borders, BorderResult{
					Border:      b.Border,
					FinalLevel:  b.FinalLevel,
					FinalRung:   b.FinalRung,
					Escalations: b.Escalations,
					Recoveries:  b.Recoveries,
					PLT:         b.PLT,
					Visits:      b.Visits,
					Failed:      b.Failed,
					SuccessRate: b.SuccessRate(),
					Survival:    b.Survival,
					Timeline:    b.Timeline,
				})
			}
		})
}

// ShardsResult is a sharded-tier load datapoint: ScholarCloud page loads
// measured across the whole domestic tier under continuous browsing,
// with the border traffic and tier economics the shard count produced.
type ShardsResult struct {
	Shards  int
	Clients int
	PLT     Summary // seconds, successful visits only
	Failed  int
	// BorderBytes is the traffic the border link carried during the
	// sweep (both directions).
	BorderBytes int64
	// Tier-wide cache activity (summed over shards).
	Hits           int64
	SiblingFetches int64
	BorderFetches  int64
	// PerUserUSD prices the tier (Shards domestic VMs plus the remote)
	// at the paper's daily workload.
	PerUserUSD float64
	Obs        obs.Snapshot
}

func (r *ShardsResult) setObs(sn obs.Snapshot) { r.Obs = sn }

// MeasureShards runs `clients` concurrent ScholarCloud clients for
// `rounds` continuous-browsing visits across the domestic tier and
// reports PLT, border traffic, tier-wide cache activity, and cost per
// served user. It runs on single-proxy simulations too (the Shards=1
// baseline the sharded rows are compared against).
func (s *Simulation) MeasureShards(clients, rounds int) (*ShardsResult, error) {
	res := &ShardsResult{}
	return measureInto(s, res,
		func() (*experiments.ShardsPoint, error) { return s.World.MeasureShards(clients, rounds) },
		func(p *experiments.ShardsPoint) {
			res.Shards, res.Clients = p.Shards, p.Clients
			res.PLT, res.Failed = p.PLT, p.Failed
			res.BorderBytes = p.BorderBytes
			res.Hits, res.SiblingFetches, res.BorderFetches = p.Hits, p.SiblingFetches, p.BorderFetches
			res.PerUserUSD = p.PerUserUSD
		})
}

// ShardKillResult classifies a load sweep's visits around a mid-sweep
// shard seizure: the coordinated response (ring rehash, PAC refresh)
// should confine failures to visits in flight at the seizure instant.
type ShardKillResult struct {
	Shards  int
	Clients int
	// Victim indexes the seized shard.
	Victim int
	KillAt time.Duration
	PLT    Summary // seconds, successful visits only

	VisitsBefore, FailedBefore int
	VisitsAfter, FailedAfter   int
	// SuccessAfter is the post-seizure success rate in [0, 1].
	SuccessAfter float64
	// SiblingErrors counts peer cache fetches that failed during the run.
	SiblingErrors int64
	Obs           obs.Snapshot
}

func (r *ShardKillResult) setObs(sn obs.Snapshot) { r.Obs = sn }

// MeasureShardKill runs `clients` concurrent ScholarCloud clients for
// `rounds` continuous-browsing visits each and seizes domestic shard
// `victim` (1-based among the extra shards; shard 0 hosts the PAC
// endpoint and cannot be the victim) at offset killAt. The simulation
// must have been built with a Shards block.
func (s *Simulation) MeasureShardKill(clients, rounds, victim int, killAt time.Duration) (*ShardKillResult, error) {
	if s.World.Cfg.Shards < 2 {
		return nil, fmt.Errorf("scholarcloud: MeasureShardKill needs Options.Shards")
	}
	res := &ShardKillResult{}
	return measureInto(s, res,
		func() (*experiments.ShardKillResult, error) {
			return s.World.MeasureShardKill(clients, rounds, victim, killAt)
		},
		func(r *experiments.ShardKillResult) {
			res.Shards, res.Clients, res.Victim = r.Shards, r.Clients, r.Victim
			res.KillAt, res.PLT = r.KillAt, r.PLT
			res.VisitsBefore, res.FailedBefore = r.VisitsBefore, r.FailedBefore
			res.VisitsAfter, res.FailedAfter = r.VisitsAfter, r.FailedAfter
			res.SuccessAfter = r.SuccessAfter()
			res.SiblingErrors = r.SiblingErrors
		})
}

// LoadPhase is one segment of an autoscale load schedule: Clients
// concurrent browsers visiting continuously for Rounds visits each.
// Phases run back to back; the offered-load signal the autoscaler
// tracks steps at each boundary.
type LoadPhase = experiments.LoadPhase

// FlashCrowdSchedule returns the canonical flash-crowd load schedule
// (calm trickle, sudden 5x surge, calm again) the autoscale figure
// runs.
func FlashCrowdSchedule() []LoadPhase {
	return experiments.FlashCrowdSchedule(experiments.Quick())
}

// DiurnalSchedule returns the compressed working-day load schedule
// (ramp-up, midday peak, ramp-down) the autoscale figure runs.
func DiurnalSchedule() []LoadPhase {
	return experiments.DiurnalSchedule(experiments.Quick())
}

// AutoscaleResult is a load-schedule datapoint for the domestic tier:
// user experience, border traffic, the tier's capacity timeline, and
// the fractional-VM cost per user. On a static simulation (no Autoscale
// block) the capacity line is constant and the event counts are zero —
// that is the baseline the autoscaled run is compared against.
type AutoscaleResult struct {
	Schedule string
	// Mode is "autoscaled" or "static-K".
	Mode   string
	Visits int
	Failed int
	PLT    Summary // seconds, successful visits only
	// P99PLT is the 99th-percentile page load time in seconds.
	P99PLT float64
	// BorderBytes is the traffic the border link carried during the
	// schedule (both directions) — scale events included.
	BorderBytes int64
	// MeanShards is the time-weighted active shard count over the
	// schedule; PeakShards is its maximum.
	MeanShards float64
	PeakShards int
	ScaleUps   int
	ScaleDowns int
	// PerUserUSD prices the day at the paper's workload with fractional
	// VM occupancy: the time-averaged tier size plus the remote at the
	// VM day rate, plus metered egress at the measured bytes/access.
	PerUserUSD float64
	Obs        obs.Snapshot
}

func (r *AutoscaleResult) setObs(sn obs.Snapshot) { r.Obs = sn }

// MeasureAutoscale drives the load schedule (e.g. FlashCrowdSchedule())
// against the domestic tier, publishing each phase's offered load to
// the autoscaler. It runs on static simulations too — with and without
// an Autoscale block it produces the comparison the autoscale figure
// plots.
func (s *Simulation) MeasureAutoscale(schedule string, phases []LoadPhase) (*AutoscaleResult, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("scholarcloud: MeasureAutoscale needs a non-empty load schedule (e.g. FlashCrowdSchedule())")
	}
	res := &AutoscaleResult{}
	return measureInto(s, res,
		func() (*experiments.AutoscalePoint, error) { return s.World.MeasureAutoscale(schedule, phases) },
		func(p *experiments.AutoscalePoint) {
			res.Schedule, res.Mode = p.Schedule, p.Mode
			res.Visits, res.Failed = p.Visits, p.Failed
			res.PLT, res.P99PLT = p.PLT, p.P99PLT
			res.BorderBytes = p.BorderBytes
			res.MeanShards, res.PeakShards = p.MeanShards, p.PeakShards
			res.ScaleUps, res.ScaleDowns = p.ScaleUps, p.ScaleDowns
			res.PerUserUSD = p.PerUserUSD
		})
}

// TracePageLoad performs one first-time page load through the named
// method with a flow tracer attached to every layer and returns the
// recorded per-hop trace.
func (s *Simulation) TracePageLoad(method string) (*obs.Trace, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	tr, _, err := s.World.TracePageLoad(f)
	return tr, err
}

// RotateBlinding switches ScholarCloud's blinding scheme on both proxies
// (the paper's agility mechanism).
func (s *Simulation) RotateBlinding(epoch uint64) { s.World.RotateBlinding(epoch) }

func (s *Simulation) factory(method string) (experiments.Factory, error) {
	if f, ok := s.World.FactoryByName(method); ok {
		return f, nil
	}
	return experiments.Factory{}, &UnknownMethodError{Method: method}
}

// UnknownMethodError reports a method name outside the study's set.
type UnknownMethodError struct{ Method string }

// Error implements error.
func (e *UnknownMethodError) Error() string {
	return "scholarcloud: unknown access method " + e.Method
}

// SurveyFigure regenerates Fig. 3's survey distribution text.
func SurveyFigure(seed uint64) string {
	return survey.FormatFigure3(survey.Generate(survey.Respondents, seed))
}
