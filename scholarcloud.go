// Package scholarcloud is the public API of the ScholarCloud
// reproduction: the split-proxy system of "Accessing Google Scholar under
// Extreme Internet Censorship: A Legal Avenue" (Middleware 2017), plus the
// simulated censored internet its measurement study runs on.
//
// Two entry points:
//
//   - Simulation wraps the full world of the paper's methodology — a
//     client inside CERNET, the GFW on the border, Google Scholar and all
//     five access methods' servers — and exposes the per-figure
//     measurement runners. See examples/ for end-to-end uses.
//
//   - Deployment runs the actual ScholarCloud proxies over real sockets:
//     a remote proxy outside the censored network and a domestic proxy
//     users' browsers point their PAC configuration at. cmd/scholarcloud
//     is the thin CLI over it.
package scholarcloud

import (
	"time"

	"scholarcloud/internal/experiments"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/survey"
)

// Simulation is a censored-internet world with all study infrastructure
// running.
type Simulation struct {
	// World exposes the underlying topology, hosts, GFW, and method
	// factories for fine-grained use.
	World *experiments.World
}

// Options configures a Simulation.
type Options struct {
	// Seed drives every stochastic decision; equal seeds reproduce equal
	// measurements. Zero selects the default (2017).
	Seed uint64
	// DisableGFW builds an uncensored world.
	DisableGFW bool
	// NoBlinding disables ScholarCloud's message blinding (ablation).
	NoBlinding bool
	// SSKeepAlive overrides Shadowsocks' 10s keep-alive (ablation).
	SSKeepAlive time.Duration
	// FleetRemotes > 0 backs ScholarCloud's domestic proxy with a managed
	// pool of that many remote proxies (health-probed, load-balanced,
	// takedown-rotated) instead of the paper's single remote.
	FleetRemotes int
	// FleetSessionsPerRemote sizes each remote's pre-dialed carrier pool.
	FleetSessionsPerRemote int
}

// NewSimulation builds and starts the world. Close it when done.
func NewSimulation(opts Options) *Simulation {
	return &Simulation{World: experiments.NewWorld(experiments.Config{
		Seed:                   opts.Seed,
		DisableGFW:             opts.DisableGFW,
		ScholarCloudNoBlinding: opts.NoBlinding,
		SSKeepAlive:            opts.SSKeepAlive,
		FleetRemotes:           opts.FleetRemotes,
		FleetSessionsPerRemote: opts.FleetSessionsPerRemote,
	})}
}

// Close stops the simulation.
func (s *Simulation) Close() { s.World.Close() }

// MethodNames lists the access methods under study, in the paper's order.
func (s *Simulation) MethodNames() []string {
	fs := s.World.Methods()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}

// Summary is a statistics summary re-exported for API users.
type Summary = metrics.Summary

// PLT measures first-time and subsequent page load times for the named
// method (Fig. 5a's datapoints).
func (s *Simulation) PLT(method string, firstRuns, subsequent int) (first, sub Summary, err error) {
	f, err := s.factory(method)
	if err != nil {
		return Summary{}, Summary{}, err
	}
	r, err := s.World.MeasurePLT(f, firstRuns, subsequent)
	if err != nil {
		return Summary{}, Summary{}, err
	}
	return r.FirstTime, r.Subsequent, nil
}

// RTT measures tunneled round-trip time (Fig. 5b).
func (s *Simulation) RTT(method string, probes int) (Summary, error) {
	f, err := s.factory(method)
	if err != nil {
		return Summary{}, err
	}
	r, err := s.World.MeasureRTT(f, probes)
	if err != nil {
		return Summary{}, err
	}
	return r.RTT, nil
}

// PLR measures the packet loss rate over the visit workload (Fig. 5c).
func (s *Simulation) PLR(method string, visits int) (float64, error) {
	f, err := s.factory(method)
	if err != nil {
		return 0, err
	}
	r, err := s.World.MeasurePLR(f, visits)
	if err != nil {
		return 0, err
	}
	return r.PLR, nil
}

// Traffic measures per-access client bytes (Fig. 6a).
func (s *Simulation) Traffic(method string, visits int) (float64, error) {
	f, err := s.factory(method)
	if err != nil {
		return 0, err
	}
	r, err := s.World.MeasureTraffic(f, visits)
	if err != nil {
		return 0, err
	}
	return r.BytesPerAccess, nil
}

// Scalability measures mean PLT under n concurrent clients (Fig. 7).
func (s *Simulation) Scalability(method string, clients, rounds int) (Summary, int, error) {
	f, err := s.factory(method)
	if err != nil {
		return Summary{}, 0, err
	}
	p, err := s.World.MeasureScalability(f, clients, rounds)
	if err != nil {
		return Summary{}, 0, err
	}
	return p.PLT, p.Failed, nil
}

// RotateBlinding switches ScholarCloud's blinding scheme on both proxies
// (the paper's agility mechanism).
func (s *Simulation) RotateBlinding(epoch uint64) { s.World.RotateBlinding(epoch) }

func (s *Simulation) factory(method string) (experiments.Factory, error) {
	if method == "direct-us" {
		return s.World.DirectBaseline(), nil
	}
	for _, f := range s.World.Methods() {
		if f.Name == method {
			return f, nil
		}
	}
	return experiments.Factory{}, &UnknownMethodError{Method: method}
}

// UnknownMethodError reports a method name outside the study's set.
type UnknownMethodError struct{ Method string }

// Error implements error.
func (e *UnknownMethodError) Error() string {
	return "scholarcloud: unknown access method " + e.Method
}

// SurveyFigure regenerates Fig. 3's survey distribution text.
func SurveyFigure(seed uint64) string {
	return survey.FormatFigure3(survey.Generate(survey.Respondents, seed))
}
