// Package scholarcloud is the public API of the ScholarCloud
// reproduction: the split-proxy system of "Accessing Google Scholar under
// Extreme Internet Censorship: A Legal Avenue" (Middleware 2017), plus the
// simulated censored internet its measurement study runs on.
//
// Two entry points:
//
//   - Simulation wraps the full world of the paper's methodology — a
//     client inside CERNET, the GFW on the border, Google Scholar and all
//     five access methods' servers — and exposes the per-figure
//     measurement runners. Every Measure* method returns a typed result
//     struct carrying the measurement's observability snapshot (the delta
//     of every layer's counters across the run). See examples/ for
//     end-to-end uses.
//
//   - Deployment runs the actual ScholarCloud proxies over real sockets:
//     a remote proxy outside the censored network and a domestic proxy
//     users' browsers point their PAC configuration at. cmd/scholarcloud
//     is the thin CLI over it.
package scholarcloud

import (
	"fmt"
	"time"

	"scholarcloud/internal/experiments"
	"scholarcloud/internal/metrics"
	"scholarcloud/internal/obs"
	"scholarcloud/internal/survey"
)

// Simulation is a censored-internet world with all study infrastructure
// running.
type Simulation struct {
	// World exposes the underlying topology, hosts, GFW, and method
	// factories for fine-grained use.
	World *experiments.World
}

// FleetOptions backs ScholarCloud's domestic proxy with a managed pool of
// remote proxies (health-probed, load-balanced, takedown-rotated) instead
// of the paper's single remote.
type FleetOptions struct {
	// Remotes is the pool size. Endpoint 0 is the paper's primary remote;
	// the rest are extra VMs.
	Remotes int
	// SessionsPerRemote sizes each remote's pre-dialed carrier pool (zero
	// selects the fleet package default).
	SessionsPerRemote int
}

// Validate rejects nonsensical fleet configurations.
func (f *FleetOptions) Validate() error {
	if f == nil {
		return nil
	}
	if f.Remotes < 0 {
		return fmt.Errorf("scholarcloud: FleetOptions.Remotes is negative (%d)", f.Remotes)
	}
	if f.SessionsPerRemote < 0 {
		return fmt.Errorf("scholarcloud: FleetOptions.SessionsPerRemote is negative (%d)", f.SessionsPerRemote)
	}
	if f.SessionsPerRemote > 0 && f.Remotes == 0 {
		return fmt.Errorf("scholarcloud: FleetOptions.SessionsPerRemote set (%d) but Remotes is zero — sessions need a fleet to belong to", f.SessionsPerRemote)
	}
	return nil
}

// CacheOptions gives the domestic proxy a shared content cache
// (internal/cache): whitelisted static objects are stored once and served
// to every user without re-crossing the border link, and concurrent
// identical misses coalesce into one upstream fetch. Enabling the cache
// also switches ScholarCloud clients to HTTPS-gateway mode (absolute-URI
// requests the proxy can see) instead of opaque CONNECT tunnels.
type CacheOptions struct {
	// CapacityMB is the cache byte budget in MiB. Required (> 0): an
	// explicit CacheOptions block with no capacity is a configuration
	// error, not a default.
	CapacityMB int
	// TTL overrides the heuristic freshness lifetime for responses without
	// explicit cache metadata (zero selects the cache package default,
	// 60 s).
	TTL time.Duration
}

// Validate rejects nonsensical cache configurations.
func (c *CacheOptions) Validate() error {
	if c == nil {
		return nil
	}
	if c.CapacityMB <= 0 {
		return fmt.Errorf("scholarcloud: CacheOptions.CapacityMB must be positive (got %d) — omit the Cache block to run without a cache", c.CapacityMB)
	}
	if c.TTL < 0 {
		return fmt.Errorf("scholarcloud: CacheOptions.TTL is negative (%v)", c.TTL)
	}
	return nil
}

// Options configures a Simulation.
type Options struct {
	// Seed drives every stochastic decision; equal seeds reproduce equal
	// measurements. Zero selects the default (2017).
	Seed uint64
	// DisableGFW builds an uncensored world.
	DisableGFW bool
	// NoBlinding disables ScholarCloud's message blinding (ablation).
	NoBlinding bool
	// SSKeepAlive overrides Shadowsocks' 10s keep-alive (ablation).
	SSKeepAlive time.Duration
	// Fleet, when non-nil with Remotes > 0, runs the domestic proxy
	// against a managed remote-proxy pool.
	Fleet *FleetOptions
	// Cache, when non-nil, runs the domestic proxy with a shared content
	// cache of Cache.CapacityMB MiB.
	Cache *CacheOptions

	// FleetRemotes is a deprecated alias for Fleet.Remotes.
	//
	// Deprecated: set Fleet instead.
	FleetRemotes int
	// FleetSessionsPerRemote is a deprecated alias for
	// Fleet.SessionsPerRemote.
	//
	// Deprecated: set Fleet instead.
	FleetSessionsPerRemote int
}

// fleet reconciles the nested Fleet block with the deprecated flat
// aliases (the nested form wins when both are set).
func (o Options) fleet() *FleetOptions {
	if o.Fleet != nil {
		return o.Fleet
	}
	if o.FleetRemotes != 0 || o.FleetSessionsPerRemote != 0 {
		return &FleetOptions{
			Remotes:           o.FleetRemotes,
			SessionsPerRemote: o.FleetSessionsPerRemote,
		}
	}
	return nil
}

// Validate rejects nonsensical option combinations with descriptive
// errors. Setting both the nested Fleet block and the deprecated flat
// aliases is fine as long as they agree (callers migrating field by
// field hit that state); disagreeing nonzero values are rejected so a
// half-migrated config can't silently pick one of the two.
func (o Options) Validate() error {
	if o.Fleet != nil {
		if o.FleetRemotes != 0 && o.FleetRemotes != o.Fleet.Remotes {
			return fmt.Errorf("scholarcloud: conflicting fleet sizes: Options.Fleet.Remotes is %d but the deprecated FleetRemotes is %d — drop one or make them agree", o.Fleet.Remotes, o.FleetRemotes)
		}
		if o.FleetSessionsPerRemote != 0 && o.FleetSessionsPerRemote != o.Fleet.SessionsPerRemote {
			return fmt.Errorf("scholarcloud: conflicting carrier-pool sizes: Options.Fleet.SessionsPerRemote is %d but the deprecated FleetSessionsPerRemote is %d — drop one or make them agree", o.Fleet.SessionsPerRemote, o.FleetSessionsPerRemote)
		}
	}
	if err := o.fleet().Validate(); err != nil {
		return err
	}
	return o.Cache.Validate()
}

// NewSimulation builds and starts the world. Close it when done. Invalid
// options (see Options.Validate) panic with a descriptive error, matching
// the construct-or-die contract of the underlying world.
func NewSimulation(opts Options) *Simulation {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	cfg := experiments.Config{
		Seed:                   opts.Seed,
		DisableGFW:             opts.DisableGFW,
		ScholarCloudNoBlinding: opts.NoBlinding,
		SSKeepAlive:            opts.SSKeepAlive,
	}
	if f := opts.fleet(); f != nil {
		cfg.FleetRemotes = f.Remotes
		cfg.FleetSessionsPerRemote = f.SessionsPerRemote
	}
	if c := opts.Cache; c != nil {
		cfg.CacheMB = c.CapacityMB
		cfg.CacheTTL = c.TTL
	}
	return &Simulation{World: experiments.NewWorld(cfg)}
}

// Close stops the simulation.
func (s *Simulation) Close() { s.World.Close() }

// MethodNames lists the access methods under study, in the paper's order.
func (s *Simulation) MethodNames() []string {
	fs := s.World.Methods()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}

// Summary is a statistics summary re-exported for API users.
type Summary = metrics.Summary

// Snapshot returns the current cumulative state of every layer's metrics
// (network, censor, tunnel core, fleet, browser).
func (s *Simulation) Snapshot() obs.Snapshot { return s.World.Obs.Snapshot() }

// PLTResult is one method's Fig. 5a datapoint: first-time and subsequent
// page load time summaries, plus the observability delta of the run.
type PLTResult struct {
	Method     string
	FirstTime  Summary // seconds
	Subsequent Summary // seconds
	Obs        obs.Snapshot
}

// RTTResult is one method's Fig. 5b datapoint.
type RTTResult struct {
	Method string
	RTT    Summary // seconds
	Obs    obs.Snapshot
}

// PLRResult is one method's Fig. 5c datapoint.
type PLRResult struct {
	Method string
	PLR    float64
	// Packets is the sample size behind the estimate.
	Packets int64
	Obs     obs.Snapshot
}

// TrafficResult is one method's Fig. 6a datapoint.
type TrafficResult struct {
	Method         string
	BytesPerAccess float64
	Obs            obs.Snapshot
}

// ScalabilityResult is one (method, concurrency) cell of Fig. 7.
type ScalabilityResult struct {
	Method  string
	Clients int
	PLT     Summary // seconds
	Failed  int
	Obs     obs.Snapshot
}

// measure runs fn between two registry snapshots and stores the delta via
// setObs.
func (s *Simulation) measure(fn func() error, setObs func(obs.Snapshot)) error {
	before := s.World.Obs.Snapshot()
	if err := fn(); err != nil {
		return err
	}
	setObs(s.World.Obs.Snapshot().Sub(before))
	return nil
}

// MeasurePLT measures first-time and subsequent page load times for the
// named method (Fig. 5a's datapoints).
func (s *Simulation) MeasurePLT(method string, firstRuns, subsequent int) (*PLTResult, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &PLTResult{Method: method}
	err = s.measure(func() error {
		r, err := s.World.MeasurePLT(f, firstRuns, subsequent)
		if err != nil {
			return err
		}
		res.FirstTime, res.Subsequent = r.FirstTime, r.Subsequent
		return nil
	}, func(sn obs.Snapshot) { res.Obs = sn })
	if err != nil {
		return nil, err
	}
	return res, nil
}

// MeasureRTT measures tunneled round-trip time (Fig. 5b).
func (s *Simulation) MeasureRTT(method string, probes int) (*RTTResult, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &RTTResult{Method: method}
	err = s.measure(func() error {
		r, err := s.World.MeasureRTT(f, probes)
		if err != nil {
			return err
		}
		res.RTT = r.RTT
		return nil
	}, func(sn obs.Snapshot) { res.Obs = sn })
	if err != nil {
		return nil, err
	}
	return res, nil
}

// MeasurePLR measures the packet loss rate over the visit workload
// (Fig. 5c).
func (s *Simulation) MeasurePLR(method string, visits int) (*PLRResult, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &PLRResult{Method: method}
	err = s.measure(func() error {
		r, err := s.World.MeasurePLR(f, visits)
		if err != nil {
			return err
		}
		res.PLR, res.Packets = r.PLR, r.Packets
		return nil
	}, func(sn obs.Snapshot) { res.Obs = sn })
	if err != nil {
		return nil, err
	}
	return res, nil
}

// MeasureTraffic measures per-access client bytes (Fig. 6a).
func (s *Simulation) MeasureTraffic(method string, visits int) (*TrafficResult, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &TrafficResult{Method: method}
	err = s.measure(func() error {
		r, err := s.World.MeasureTraffic(f, visits)
		if err != nil {
			return err
		}
		res.BytesPerAccess = r.BytesPerAccess
		return nil
	}, func(sn obs.Snapshot) { res.Obs = sn })
	if err != nil {
		return nil, err
	}
	return res, nil
}

// MeasureScalability measures mean PLT under n concurrent clients
// (Fig. 7).
func (s *Simulation) MeasureScalability(method string, clients, rounds int) (*ScalabilityResult, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	res := &ScalabilityResult{Method: method, Clients: clients}
	err = s.measure(func() error {
		p, err := s.World.MeasureScalability(f, clients, rounds)
		if err != nil {
			return err
		}
		res.PLT, res.Failed = p.PLT, p.Failed
		return nil
	}, func(sn obs.Snapshot) { res.Obs = sn })
	if err != nil {
		return nil, err
	}
	return res, nil
}

// TracePageLoad performs one first-time page load through the named
// method with a flow tracer attached to every layer and returns the
// recorded per-hop trace.
func (s *Simulation) TracePageLoad(method string) (*obs.Trace, error) {
	f, err := s.factory(method)
	if err != nil {
		return nil, err
	}
	tr, _, err := s.World.TracePageLoad(f)
	return tr, err
}

// PLT measures page load times as bare summaries.
//
// Deprecated: use MeasurePLT, which also carries the run's observability
// snapshot.
func (s *Simulation) PLT(method string, firstRuns, subsequent int) (first, sub Summary, err error) {
	r, err := s.MeasurePLT(method, firstRuns, subsequent)
	if err != nil {
		return Summary{}, Summary{}, err
	}
	return r.FirstTime, r.Subsequent, nil
}

// RTT measures tunneled round-trip time as a bare summary.
//
// Deprecated: use MeasureRTT.
func (s *Simulation) RTT(method string, probes int) (Summary, error) {
	r, err := s.MeasureRTT(method, probes)
	if err != nil {
		return Summary{}, err
	}
	return r.RTT, nil
}

// PLR measures the packet loss rate as a bare float.
//
// Deprecated: use MeasurePLR.
func (s *Simulation) PLR(method string, visits int) (float64, error) {
	r, err := s.MeasurePLR(method, visits)
	if err != nil {
		return 0, err
	}
	return r.PLR, nil
}

// Traffic measures per-access client bytes as a bare float.
//
// Deprecated: use MeasureTraffic.
func (s *Simulation) Traffic(method string, visits int) (float64, error) {
	r, err := s.MeasureTraffic(method, visits)
	if err != nil {
		return 0, err
	}
	return r.BytesPerAccess, nil
}

// Scalability measures mean PLT under n concurrent clients as a bare
// tuple.
//
// Deprecated: use MeasureScalability.
func (s *Simulation) Scalability(method string, clients, rounds int) (Summary, int, error) {
	r, err := s.MeasureScalability(method, clients, rounds)
	if err != nil {
		return Summary{}, 0, err
	}
	return r.PLT, r.Failed, nil
}

// RotateBlinding switches ScholarCloud's blinding scheme on both proxies
// (the paper's agility mechanism).
func (s *Simulation) RotateBlinding(epoch uint64) { s.World.RotateBlinding(epoch) }

func (s *Simulation) factory(method string) (experiments.Factory, error) {
	if f, ok := s.World.FactoryByName(method); ok {
		return f, nil
	}
	return experiments.Factory{}, &UnknownMethodError{Method: method}
}

// UnknownMethodError reports a method name outside the study's set.
type UnknownMethodError struct{ Method string }

// Error implements error.
func (e *UnknownMethodError) Error() string {
	return "scholarcloud: unknown access method " + e.Method
}

// SurveyFigure regenerates Fig. 3's survey distribution text.
func SurveyFigure(seed uint64) string {
	return survey.FormatFigure3(survey.Generate(survey.Respondents, seed))
}
